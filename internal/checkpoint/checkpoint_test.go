package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"vax780/internal/cpu"
	"vax780/internal/fault"
)

// testSnapshot builds a small but non-trivial snapshot: enough populated
// fields that an encode/decode identity failure would show.
func testSnapshot(cycle uint64) *Snapshot {
	fc := fault.Config{Seed: 7}
	s := &Snapshot{
		Meta: Meta{
			Profile:     "rte-commercial",
			TotalCycles: 500_000,
			Cycle:       cycle,
			Machine:     cpu.Config{MemBytes: 1 << 20},
			Fault:       &fc,
		},
		FaultState: &fault.State{},
	}
	s.CPU.R[5] = 0xdeadbeef
	s.CPU.PSL = 0x041f0000
	s.CPU.Cycle = cycle
	s.CPU.Instret = cycle / 7
	s.OS.NextClock = cycle + 100
	s.OS.CPUTime = map[uint32]uint64{0x200: cycle / 2}
	s.Monitor.Running = true
	s.Monitor.Hist.Counts[100] = 42
	return s
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	want := testSnapshot(123_456)
	var buf bytes.Buffer
	if err := Encode(&buf, want); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip changed the snapshot")
	}
	if got.Complete() {
		t.Fatalf("snapshot at cycle %d of %d reported complete", got.Meta.Cycle, got.Meta.TotalCycles)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testSnapshot(1000)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	data := buf.Bytes()

	mustCorrupt := func(name string, b []byte) {
		t.Helper()
		s, err := Decode(bytes.NewReader(b))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
		if s != nil {
			t.Errorf("%s: corrupt decode returned a snapshot", name)
		}
	}

	for i := 0; i <= 7; i++ {
		cut := len(data) * i / 8
		mustCorrupt("truncated to "+strconv.Itoa(cut)+" bytes", data[:cut])
	}
	mustCorrupt("one padding byte", append(append([]byte(nil), data...), 0))
	for _, off := range []int{0, 7, 8, 12, 19, headerLen + 10, len(data) - trailerLen, len(data) - 1} {
		b := append([]byte(nil), data...)
		b[off] ^= 0x5a
		mustCorrupt("byte flip at "+strconv.Itoa(off), b)
	}
}

// TestDecodeRejectsOtherVersion rebuilds a structurally valid snapshot
// claiming a future format version (checksum recomputed, so only the
// version check can object) and requires ErrBadVersion — no silent
// cross-version resume.
func TestDecodeRejectsOtherVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testSnapshot(1000)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[8:], FormatVersion+1)
	sum := sha256.Sum256(data[:len(data)-trailerLen])
	copy(data[len(data)-trailerLen:], sum[:])
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestDirSaveLoadAndPrune(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "ck"), 3)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for c := uint64(1); c <= 5; c++ {
		if _, err := d.Save(testSnapshot(c * 1000)); err != nil {
			t.Fatalf("Save %d: %v", c, err)
		}
	}
	gens, err := d.Generations()
	if err != nil {
		t.Fatalf("Generations: %v", err)
	}
	if len(gens) != 3 {
		t.Fatalf("want 3 retained generations, have %d: %v", len(gens), gens)
	}
	s, path, err := d.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if s.Meta.Cycle != 5000 {
		t.Fatalf("latest snapshot is cycle %d, want 5000", s.Meta.Cycle)
	}
	if path != gens[len(gens)-1] {
		t.Fatalf("LoadLatest path %s is not the newest generation %s", path, gens[len(gens)-1])
	}
}

// TestDirFallsBackPastCorruptGeneration is the crash-consistency core: a
// damaged newest generation (the only file a crash can damage) must be
// skipped, and its intact predecessor loaded.
func TestDirFallsBackPastCorruptGeneration(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "ck"), 3)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for c := uint64(1); c <= 3; c++ {
		if _, err := d.Save(testSnapshot(c * 1000)); err != nil {
			t.Fatalf("Save %d: %v", c, err)
		}
	}
	gens, _ := d.Generations()
	newest := gens[len(gens)-1]
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	s, path, err := d.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest with corrupt newest: %v", err)
	}
	if s.Meta.Cycle != 2000 {
		t.Fatalf("fell back to cycle %d, want the intact 2000", s.Meta.Cycle)
	}
	if path == newest {
		t.Fatalf("LoadLatest claims to have loaded the corrupt file")
	}

	// All generations corrupt: a typed, descriptive error.
	for _, g := range gens {
		if err := os.WriteFile(g, []byte("junk"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := d.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot when every generation is damaged, got %v", err)
	}
}

func TestDirEmpty(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "ck"), 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := d.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot from an empty directory, got %v", err)
	}
}

// TestDirIgnoresStaleTemp plants a half-written temp file (a simulated
// crash mid-Save): it must not be loadable, and the next Save must clean
// it up.
func TestDirIgnoresStaleTemp(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "ck"), 3)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stale := filepath.Join(d.Path(), "ckpt-123.tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o666); err != nil {
		t.Fatal(err)
	}
	gens, err := d.Generations()
	if err != nil || len(gens) != 0 {
		t.Fatalf("temp file visible as a generation: %v %v", gens, err)
	}
	if _, err := d.Save(testSnapshot(1000)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Save: %v", err)
	}
}
