// Package checkpoint makes measurement runs crash-safe: it defines a
// versioned, checksummed snapshot of the complete simulator state — CPU
// architectural and micro state, OS scheduler state, cache/TB/memory
// contents, write buffer, fault-plane PRNG streams, and the live µPC
// histogram — together with a generation-keeping directory writer whose
// files are written atomically (temp file + rename) and loaded newest-
// first with automatic fallback past corrupt generations.
//
// The contract the rest of the system builds on is deterministic resume:
// a run checkpointed at cycle C and resumed produces a histogram, counter
// set, and reduction bit-identical to an uninterrupted run (proved by
// TestCheckpointResumeDeterminism in internal/workload). The paper's
// sessions were ~1-hour attachments to live machines (§2.2); an
// interrupted session that can continue without invalidating its numbers
// is the moral equivalent.
//
// On-disk layout of one snapshot:
//
//	offset 0   8 bytes   magic "VAX780CP"
//	offset 8   4 bytes   format version (little-endian)
//	offset 12  8 bytes   payload length n (little-endian)
//	offset 20  n bytes   gob-encoded Snapshot
//	offset 20+n  32 bytes  SHA-256 over bytes [0, 20+n)
//
// Any damage — truncation, padding, a flipped bit anywhere — fails the
// length or checksum test and is reported as ErrCorrupt; the gob decoder
// only ever sees checksum-verified bytes.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/vmos"
)

// FormatVersion is the current snapshot format version. Decode rejects
// snapshots from other versions (no silent cross-version resume).
const FormatVersion = 1

var magic = [8]byte{'V', 'A', 'X', '7', '8', '0', 'C', 'P'}

const (
	headerLen  = 20 // magic + version + payload length
	trailerLen = sha256.Size
)

// ErrCorrupt reports a snapshot that is truncated, padded, checksum-
// damaged, or otherwise undecodable. Wrapped by Decode and the Dir loader.
var ErrCorrupt = errors.New("corrupt checkpoint")

// ErrBadVersion reports a snapshot from a different format version.
var ErrBadVersion = errors.New("unsupported checkpoint format version")

// Meta identifies what a snapshot is a checkpoint of, with everything the
// resume path needs to rebuild the run before importing the state.
type Meta struct {
	// Profile is the workload profile name (internal/workload.ByName).
	Profile string
	// Seed is the effective generation seed of the run's profile. Fleet
	// runs (internal/farm) derive per-instance seeds from the registry
	// profile, so the name alone under-identifies the run; resume honors
	// this field over the registry seed. Zero (snapshots predating the
	// field — gob leaves absent fields zero) means the registry default.
	Seed int64
	// TotalCycles is the run's full cycle budget; Cycle is how far the
	// checkpointed run had progressed. Cycle >= TotalCycles marks a
	// completed run (kept so a composite resume can reload finished
	// workloads without re-running them).
	TotalCycles uint64
	Cycle       uint64
	// Machine is the machine configuration of the run.
	Machine cpu.Config
	// Fault is the fault-injection configuration (nil for a clean run).
	Fault *fault.Config
}

// Snapshot is the complete state of one measurement run.
type Snapshot struct {
	Meta    Meta
	CPU     cpu.State
	OS      vmos.State
	Monitor core.MonitorState
	// FaultState is the injection plane's PRNG stream positions and
	// statistics (nil for a clean run).
	FaultState *fault.State
}

// Complete reports whether the snapshot is of a run that finished its
// cycle budget.
func (s *Snapshot) Complete() bool { return s.Meta.Cycle >= s.Meta.TotalCycles }

// Encode writes the snapshot in the checksummed on-disk form.
func Encode(w io.Writer, s *Snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encoding snapshot: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(payload.Len()))
	sum := sha256.New()
	sum.Write(hdr[:])
	sum.Write(payload.Bytes())
	for _, b := range [][]byte{hdr[:], payload.Bytes(), sum.Sum(nil)} {
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("checkpoint: writing snapshot: %w", err)
		}
	}
	return nil
}

// Decode reads a snapshot written by Encode. It never panics on arbitrary
// input (FuzzCheckpointLoad proves this) and returns an error wrapping
// ErrCorrupt or ErrBadVersion on anything but a pristine snapshot.
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading snapshot: %w", err)
	}
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("checkpoint: %w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("checkpoint: %w: bad magic", ErrCorrupt)
	}
	// Integrity before interpretation: the version field is only trusted
	// after the checksum over the whole file passes.
	n := binary.LittleEndian.Uint64(data[12:20])
	if uint64(len(data)) != headerLen+n+trailerLen {
		return nil, fmt.Errorf("checkpoint: %w: %d bytes on disk, header promises %d",
			ErrCorrupt, len(data), headerLen+n+trailerLen)
	}
	body := data[:headerLen+n]
	got := sha256.Sum256(body)
	if !bytes.Equal(got[:], data[headerLen+n:]) {
		return nil, fmt.Errorf("checkpoint: %w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("checkpoint: %w: snapshot is version %d, this build reads %d",
			ErrBadVersion, v, FormatVersion)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(body[headerLen:])).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: %w: payload does not decode: %v", ErrCorrupt, err)
	}
	return &s, nil
}
