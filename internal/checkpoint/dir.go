package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Dir manages a directory of snapshot generations. Each Save writes one
// file named after the snapshot's cycle count, atomically: the bytes go to
// a temporary file in the same directory, are synced, and the file is
// renamed into place — a crash mid-write leaves a .tmp file (ignored by
// the loader and cleaned on the next Save), never a half-written
// generation under the real name. The newest keep generations are
// retained; older ones are pruned after a successful Save, so the
// directory always holds at least one complete generation once any Save
// has succeeded.
type Dir struct {
	path string
	keep int
}

// DefaultKeep is the number of snapshot generations retained when the
// caller does not choose.
const DefaultKeep = 3

const (
	snapSuffix = ".vaxck"
	tmpSuffix  = ".tmp"
)

// ErrNoSnapshot reports a checkpoint directory with no loadable snapshot.
var ErrNoSnapshot = errors.New("no usable snapshot")

// Open prepares a checkpoint directory, creating it if needed. keep <= 0
// selects DefaultKeep.
func Open(path string, keep int) (*Dir, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(path, 0o777); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Dir{path: path, keep: keep}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// name returns the generation filename for a snapshot at the given cycle.
// Zero-padded so lexical order is cycle order.
func name(cycle uint64) string {
	return fmt.Sprintf("ckpt-%020d%s", cycle, snapSuffix)
}

// Save writes one snapshot generation atomically and prunes old
// generations (and stale temp files) beyond the retention count. It
// returns the path of the written generation.
func (d *Dir) Save(s *Snapshot) (string, error) {
	final := filepath.Join(d.path, name(s.Meta.Cycle))
	tmp, err := os.CreateTemp(d.path, "ckpt-*"+tmpSuffix)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := Encode(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	d.prune()
	return final, nil
}

// Generations returns the snapshot files present, oldest first. Temp
// files from interrupted writes are excluded.
func (d *Dir) Generations() ([]string, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var gens []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), snapSuffix) {
			gens = append(gens, filepath.Join(d.path, e.Name()))
		}
	}
	sort.Strings(gens)
	return gens, nil
}

// prune removes generations beyond the newest keep, plus any stale temp
// files. Prune failures are ignored: retention is a disk-space courtesy,
// not a correctness property.
func (d *Dir) prune() {
	gens, err := d.Generations()
	if err != nil {
		return
	}
	for i := 0; i+d.keep < len(gens); i++ {
		os.Remove(gens[i])
	}
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			os.Remove(filepath.Join(d.path, e.Name()))
		}
	}
}

// LoadLatest loads the newest decodable snapshot, falling back through
// older generations when the newest is corrupt (a crash can damage at
// most the generation being written; its predecessors are immutable).
// It returns the snapshot and the path it came from. When nothing loads,
// the error wraps ErrNoSnapshot and lists what was wrong with each
// candidate.
func (d *Dir) LoadLatest() (*Snapshot, string, error) {
	gens, err := d.Generations()
	if err != nil {
		return nil, "", err
	}
	var failures []string
	for i := len(gens) - 1; i >= 0; i-- {
		f, err := os.Open(gens[i])
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", gens[i], err))
			continue
		}
		s, err := Decode(f)
		f.Close()
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", gens[i], err))
			continue
		}
		return s, gens[i], nil
	}
	if len(failures) == 0 {
		return nil, "", fmt.Errorf("checkpoint: %w in %s", ErrNoSnapshot, d.path)
	}
	return nil, "", fmt.Errorf("checkpoint: %w in %s:\n  %s",
		ErrNoSnapshot, d.path, strings.Join(failures, "\n  "))
}
