// Package cache models the VAX-11/780 cache: 8 KB, two-way set-associative
// with 8-byte blocks, write-through with no allocation on write miss
// (Clark, "Cache Performance in the VAX-11/780", TOCS 1983; §2.1 of the
// paper). The cache is shared by the I-Fetch unit and the EBOX.
//
// Because the machine is write-through and this model has no DMA devices
// writing behind the cache, physical memory is always current; the cache is
// therefore purely a *timing* structure (hit/miss state), and data is
// always read from the memory array. The paper's measurements depend only
// on hit/miss behaviour, which is modelled exactly.
package cache

import "fmt"

// Stream identifies the requester class for statistics (§4.2 splits misses
// into I-stream and D-stream).
type Stream int

const (
	IStream Stream = iota
	DStream
)

func (s Stream) String() string {
	if s == IStream {
		return "I-stream"
	}
	return "D-stream"
}

// Config describes a cache geometry.
type Config struct {
	SizeBytes  int // total data capacity
	Ways       int // associativity
	BlockBytes int // block (line) size
}

// DefaultConfig returns the 11/780 cache geometry.
func DefaultConfig() Config {
	return Config{SizeBytes: 8 * 1024, Ways: 2, BlockBytes: 8}
}

// Stats are cumulative per-stream reference counts.
type Stats struct {
	ReadHits    [2]uint64
	ReadMisses  [2]uint64
	WriteHits   uint64 // writes that updated the cache
	WriteMisses uint64 // writes that bypassed the cache (no allocate)
	Flushes     uint64
	// ParityErrors counts injected tag/data parity errors. Each
	// invalidates the affected line, forces a miss (refill from memory),
	// and raises a machine check.
	ParityErrors uint64
}

// Reads returns total read references for a stream.
func (s Stats) Reads(st Stream) uint64 { return s.ReadHits[st] + s.ReadMisses[st] }

// MissRatio returns the read miss ratio for a stream (0 if no reads).
func (s Stats) MissRatio(st Stream) float64 {
	total := s.Reads(st)
	if total == 0 {
		return 0
	}
	return float64(s.ReadMisses[st]) / float64(total)
}

type line struct {
	valid bool
	tag   uint32
	// mru marks the most-recently-used way of a 2-way set; for higher
	// associativity it holds an LRU timestamp.
	lru uint64
}

// Tracer observes cache references (see internal/trace). Callbacks fire
// before the reference is applied.
type Tracer interface {
	CacheRead(pa uint32, st Stream)
	CacheWrite(pa uint32)
	CacheFlush()
}

// Cache is a set-associative timing cache indexed by physical address.
type Cache struct {
	cfg      Config //vaxlint:allow statecomplete -- travels as part of checkpoint Meta.Machine
	sets     [][]line
	setShift uint   //vaxlint:allow statecomplete -- derived from cfg by New
	setMask  uint32 //vaxlint:allow statecomplete -- derived from cfg by New
	stamp    uint64
	stats    Stats
	tracer   Tracer //vaxlint:allow statecomplete -- attachment; re-attached after resume

	inject    func() bool //vaxlint:allow statecomplete -- attachment derived from the fault plane (parity sampler, nil = never)
	faultAddr uint32
	hasFault  bool
}

// SetTracer attaches a passive reference tracer (nil detaches).
func (c *Cache) SetTracer(tr Tracer) { c.tracer = tr }

// SetInjector installs a parity fault sampler consulted once per read
// lookup (nil removes it). See internal/fault.
func (c *Cache) SetInjector(sample func() bool) { c.inject = sample }

// TakeFault returns and clears the latched parity syndrome: the physical
// address whose lookup saw bad parity. Single-error latch.
func (c *Cache) TakeFault() (pa uint32, ok bool) {
	a, had := c.faultAddr, c.hasFault
	c.faultAddr, c.hasFault = 0, false
	return a, had
}

// New returns a cache with the given geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	nSets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	if nSets == 0 || nSets&(nSets-1) != 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: geometry %+v not a power of two", cfg)
	}
	c := &Cache{cfg: cfg, setMask: uint32(nSets - 1)}
	for cfg.BlockBytes>>c.setShift > 1 {
		c.setShift++
	}
	c.sets = make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns cumulative statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) find(pa uint32) (set []line, tag uint32, way int) {
	idx := (pa >> c.setShift) & c.setMask
	tag = pa >> c.setShift >> log2(uint32(len(c.sets)))
	set = c.sets[idx]
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return set, tag, w
		}
	}
	return set, tag, -1
}

// Read looks up a read reference; on a miss the block is allocated
// (replacing the LRU way). It returns whether the reference hit.
func (c *Cache) Read(pa uint32, st Stream) bool {
	if c.tracer != nil {
		c.tracer.CacheRead(pa, st)
	}
	if c.inject != nil && c.inject() {
		// Parity error on lookup: the line (if resident) can no longer
		// be trusted — invalidate it so the reference misses and the
		// block refills from memory, and latch the syndrome for the
		// machine-check microcode.
		if set, _, way := c.find(pa); way >= 0 {
			set[way] = line{}
		}
		c.stats.ParityErrors++
		if !c.hasFault {
			c.faultAddr, c.hasFault = pa, true
		}
	}
	set, tag, way := c.find(pa)
	c.stamp++
	if way >= 0 {
		set[way].lru = c.stamp
		c.stats.ReadHits[st]++
		return true
	}
	c.stats.ReadMisses[st]++
	victim := 0
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	set[victim] = line{valid: true, tag: tag, lru: c.stamp}
	return false
}

// Probe reports whether pa currently hits, without updating state.
func (c *Cache) Probe(pa uint32) bool {
	_, _, way := c.find(pa)
	return way >= 0
}

// Write applies the write-through policy: on a hit the block is updated
// (and stays resident); on a miss the cache is left untouched ("if the
// write access misses, the cache is not updated", §2.1). It returns
// whether the write hit.
func (c *Cache) Write(pa uint32) bool {
	if c.tracer != nil {
		c.tracer.CacheWrite(pa)
	}
	set, _, way := c.find(pa)
	c.stamp++
	if way >= 0 {
		set[way].lru = c.stamp
		c.stats.WriteHits++
		return true
	}
	c.stats.WriteMisses++
	return false
}

// Flush invalidates the entire cache.
func (c *Cache) Flush() {
	if c.tracer != nil {
		c.tracer.CacheFlush()
	}
	for _, set := range c.sets {
		for w := range set {
			set[w] = line{}
		}
	}
	c.stats.Flushes++
}

// BlockBase returns the block-aligned base address containing pa.
func (c *Cache) BlockBase(pa uint32) uint32 {
	return pa &^ uint32(c.cfg.BlockBytes-1)
}

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
