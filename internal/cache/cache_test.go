package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mustCache builds a default-geometry cache, failing the test on error.
func mustCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t)
	if c.Read(0x1000, DStream) {
		t.Error("cold read should miss")
	}
	if !c.Read(0x1000, DStream) {
		t.Error("second read should hit")
	}
	if !c.Read(0x1004, DStream) {
		t.Error("same 8-byte block should hit")
	}
	if c.Read(0x1008, DStream) {
		t.Error("next block should miss")
	}
	st := c.Stats()
	if st.ReadHits[DStream] != 2 || st.ReadMisses[DStream] != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTwoWayLRUReplacement(t *testing.T) {
	c := mustCache(t)
	// Three blocks mapping to the same set: set index covers 512 sets of
	// 8-byte blocks, so addresses 4096*k apart share a set.
	stride := uint32(c.Config().SizeBytes / c.Config().Ways)
	a, b, d := uint32(0x100), 0x100+stride, 0x100+2*stride
	c.Read(a, DStream)
	c.Read(b, DStream)
	c.Read(a, DStream) // a is now MRU
	c.Read(d, DStream) // evicts b
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := mustCache(t)
	if c.Write(0x2000) {
		t.Error("write miss should report miss")
	}
	if c.Probe(0x2000) {
		t.Error("write miss must not allocate")
	}
	c.Read(0x2000, DStream)
	if !c.Write(0x2000) {
		t.Error("write to resident block should hit")
	}
	if !c.Probe(0x2000) {
		t.Error("write hit must keep block resident")
	}
	st := c.Stats()
	if st.WriteHits != 1 || st.WriteMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t)
	c.Read(0x100, IStream)
	c.Flush()
	if c.Probe(0x100) {
		t.Error("flush should invalidate")
	}
	if c.Stats().Flushes != 1 {
		t.Error("flush not counted")
	}
}

func TestStreamsCountedSeparately(t *testing.T) {
	c := mustCache(t)
	c.Read(0x100, IStream)
	c.Read(0x900, DStream)
	st := c.Stats()
	if st.ReadMisses[IStream] != 1 || st.ReadMisses[DStream] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRatio(IStream) != 1.0 {
		t.Errorf("I miss ratio = %v", st.MissRatio(IStream))
	}
}

func TestMissRatioNoReads(t *testing.T) {
	c := mustCache(t)
	if r := c.Stats().MissRatio(DStream); r != 0 {
		t.Errorf("empty miss ratio = %v", r)
	}
}

func TestBadGeometryErrors(t *testing.T) {
	bad := []Config{
		{SizeBytes: 3000, Ways: 2, BlockBytes: 8}, // sets not a power of two
		{SizeBytes: 8192, Ways: 2, BlockBytes: 6}, // block not a power of two
		{SizeBytes: 0, Ways: 2, BlockBytes: 8},
		{SizeBytes: 8192, Ways: -1, BlockBytes: 8},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("geometry %+v should be rejected", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default geometry rejected: %v", err)
	}
}

func TestParityInjection(t *testing.T) {
	c := mustCache(t)
	fire := false
	c.SetInjector(func() bool { return fire })
	c.Read(0x1000, DStream) // miss, allocate
	if !c.Probe(0x1000) {
		t.Fatal("block not resident after read")
	}
	fire = true
	// Parity on lookup invalidates the resident line: the reference misses
	// and refills, and the syndrome is latched.
	if c.Read(0x1000, DStream) {
		t.Error("parity-hit read should miss")
	}
	fire = false
	if !c.Probe(0x1000) {
		t.Error("block should have refilled after the parity miss")
	}
	pa, ok := c.TakeFault()
	if !ok || pa != 0x1000 {
		t.Errorf("latched parity fault = %#x ok=%v", pa, ok)
	}
	if _, ok := c.TakeFault(); ok {
		t.Error("TakeFault should clear the latch")
	}
	if c.Stats().ParityErrors != 1 {
		t.Errorf("parity errors = %d", c.Stats().ParityErrors)
	}
}

func TestBlockBase(t *testing.T) {
	c := mustCache(t)
	if got := c.BlockBase(0x1237); got != 0x1230 {
		t.Errorf("BlockBase = %#x, want 0x1230", got)
	}
}

// Property: after Read(pa), Probe(pa) always hits; working sets no larger
// than the associativity within one set never miss after warmup.
func TestPropertyReadThenProbeHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := mustCache(t)
		for _, a := range addrs {
			a &= 0x7FFFFF
			c.Read(a, DStream)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hit ratio of a small looping working set approaches 1.
func TestSmallWorkingSetHitsAfterWarmup(t *testing.T) {
	c := mustCache(t)
	r := rand.New(rand.NewSource(1))
	ws := make([]uint32, 64)
	for i := range ws {
		ws[i] = uint32(r.Intn(2048)) &^ 3
	}
	for pass := 0; pass < 10; pass++ {
		for _, a := range ws {
			c.Read(a, DStream)
		}
	}
	st := c.Stats()
	if ratio := st.MissRatio(DStream); ratio > 0.15 {
		t.Errorf("small working set miss ratio = %v, want < 0.15", ratio)
	}
}

// Property: total references conserved across hits/misses.
func TestPropertyReferenceConservation(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := mustCache(t)
		var reads, wr int
		for i, a := range addrs {
			if i < len(writes) && writes[i] {
				c.Write(uint32(a))
				wr++
			} else {
				c.Read(uint32(a), DStream)
				reads++
			}
		}
		st := c.Stats()
		return st.Reads(DStream) == uint64(reads) &&
			st.WriteHits+st.WriteMisses == uint64(wr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
