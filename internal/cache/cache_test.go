package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(DefaultConfig())
	if c.Read(0x1000, DStream) {
		t.Error("cold read should miss")
	}
	if !c.Read(0x1000, DStream) {
		t.Error("second read should hit")
	}
	if !c.Read(0x1004, DStream) {
		t.Error("same 8-byte block should hit")
	}
	if c.Read(0x1008, DStream) {
		t.Error("next block should miss")
	}
	st := c.Stats()
	if st.ReadHits[DStream] != 2 || st.ReadMisses[DStream] != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTwoWayLRUReplacement(t *testing.T) {
	c := New(DefaultConfig())
	// Three blocks mapping to the same set: set index covers 512 sets of
	// 8-byte blocks, so addresses 4096*k apart share a set.
	stride := uint32(c.Config().SizeBytes / c.Config().Ways)
	a, b, d := uint32(0x100), 0x100+stride, 0x100+2*stride
	c.Read(a, DStream)
	c.Read(b, DStream)
	c.Read(a, DStream) // a is now MRU
	c.Read(d, DStream) // evicts b
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := New(DefaultConfig())
	if c.Write(0x2000) {
		t.Error("write miss should report miss")
	}
	if c.Probe(0x2000) {
		t.Error("write miss must not allocate")
	}
	c.Read(0x2000, DStream)
	if !c.Write(0x2000) {
		t.Error("write to resident block should hit")
	}
	if !c.Probe(0x2000) {
		t.Error("write hit must keep block resident")
	}
	st := c.Stats()
	if st.WriteHits != 1 || st.WriteMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlush(t *testing.T) {
	c := New(DefaultConfig())
	c.Read(0x100, IStream)
	c.Flush()
	if c.Probe(0x100) {
		t.Error("flush should invalidate")
	}
	if c.Stats().Flushes != 1 {
		t.Error("flush not counted")
	}
}

func TestStreamsCountedSeparately(t *testing.T) {
	c := New(DefaultConfig())
	c.Read(0x100, IStream)
	c.Read(0x900, DStream)
	st := c.Stats()
	if st.ReadMisses[IStream] != 1 || st.ReadMisses[DStream] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRatio(IStream) != 1.0 {
		t.Errorf("I miss ratio = %v", st.MissRatio(IStream))
	}
}

func TestMissRatioNoReads(t *testing.T) {
	c := New(DefaultConfig())
	if r := c.Stats().MissRatio(DStream); r != 0 {
		t.Errorf("empty miss ratio = %v", r)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two geometry should panic")
		}
	}()
	New(Config{SizeBytes: 3000, Ways: 2, BlockBytes: 8})
}

func TestBlockBase(t *testing.T) {
	c := New(DefaultConfig())
	if got := c.BlockBase(0x1237); got != 0x1230 {
		t.Errorf("BlockBase = %#x, want 0x1230", got)
	}
}

// Property: after Read(pa), Probe(pa) always hits; working sets no larger
// than the associativity within one set never miss after warmup.
func TestPropertyReadThenProbeHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(DefaultConfig())
		for _, a := range addrs {
			a &= 0x7FFFFF
			c.Read(a, DStream)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hit ratio of a small looping working set approaches 1.
func TestSmallWorkingSetHitsAfterWarmup(t *testing.T) {
	c := New(DefaultConfig())
	r := rand.New(rand.NewSource(1))
	ws := make([]uint32, 64)
	for i := range ws {
		ws[i] = uint32(r.Intn(2048)) &^ 3
	}
	for pass := 0; pass < 10; pass++ {
		for _, a := range ws {
			c.Read(a, DStream)
		}
	}
	st := c.Stats()
	if ratio := st.MissRatio(DStream); ratio > 0.15 {
		t.Errorf("small working set miss ratio = %v, want < 0.15", ratio)
	}
}

// Property: total references conserved across hits/misses.
func TestPropertyReferenceConservation(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := New(DefaultConfig())
		var reads, wr int
		for i, a := range addrs {
			if i < len(writes) && writes[i] {
				c.Write(uint32(a))
				wr++
			} else {
				c.Read(uint32(a), DStream)
				reads++
			}
		}
		st := c.Stats()
		return st.Reads(DStream) == uint64(reads) &&
			st.WriteHits+st.WriteMisses == uint64(wr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
