package cache

import "fmt"

// State is the serialized state of the cache, for the checkpoint/resume
// path (internal/checkpoint). Geometry, the tracer and the fault injector
// are construction/attachment-time wiring, not run state: the resume path
// rebuilds the cache from its Config and imports into it.

// LineState is one cache line.
type LineState struct {
	Valid bool
	Tag   uint32
	LRU   uint64
}

// State captures every line (sets × ways, in set order), the LRU clock,
// the statistics and the parity-error latch.
type State struct {
	Lines     []LineState
	Stamp     uint64
	Stats     Stats
	FaultAddr uint32
	HasFault  bool
}

// ExportState captures the full cache state.
func (c *Cache) ExportState() State {
	st := State{
		Lines:     make([]LineState, 0, len(c.sets)*c.cfg.Ways),
		Stamp:     c.stamp,
		Stats:     c.stats,
		FaultAddr: c.faultAddr,
		HasFault:  c.hasFault,
	}
	for _, set := range c.sets {
		for _, l := range set {
			st.Lines = append(st.Lines, LineState{Valid: l.valid, Tag: l.tag, LRU: l.lru})
		}
	}
	return st
}

// ImportState restores a state captured from a cache of the same geometry.
func (c *Cache) ImportState(st State) error {
	if len(st.Lines) != len(c.sets)*c.cfg.Ways {
		return fmt.Errorf("cache: snapshot holds %d lines, geometry has %d",
			len(st.Lines), len(c.sets)*c.cfg.Ways)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			l := st.Lines[i]
			set[w] = line{valid: l.Valid, tag: l.Tag, lru: l.LRU}
			i++
		}
	}
	c.stamp = st.Stamp
	c.stats = st.Stats
	c.faultAddr = st.FaultAddr
	c.hasFault = st.HasFault
	return nil
}
