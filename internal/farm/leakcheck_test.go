package farm

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Runtime twin of the goleak analyzer: the static proof says every
// spawned worker has an exit path; this check confirms, after the runs
// most likely to strand one (chaos kills, pool exhaustion), that none
// actually survived. Static and dynamic verdicts cross-check each other.

// workerGoroutines counts live goroutines with a (*worker) frame — the
// pool itself, not the test goroutine (whose frames are farm.TestXxx).
func workerGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "farm.(*worker).") {
			count++
		}
	}
	return count
}

// checkGoroutineLeak snapshots runtime.NumGoroutine and returns a
// function to defer: it polls (goroutine teardown is asynchronous) until
// every worker goroutine is gone and the total is back at the snapshot,
// and fails the test with full stacks if that never happens.
func checkGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			workers := workerGoroutines()
			total := runtime.NumGoroutine()
			if workers == 0 && total <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak after farm run: %d worker goroutines still live, %d total vs %d at start\n%s",
					workers, total, before, buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
