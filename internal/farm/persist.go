package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"vax780/internal/checkpoint"
	"vax780/internal/core"
	"vax780/internal/workload"
)

// Durable layout under Config.Root:
//
//	farm.json                 manifest: the Config, for bare resume
//	inst-00042/ckpt-*.vaxck   checkpoint generations while running
//	inst-00042/result.upc     merged-ready histogram once completed
//	inst-00042/result.json    completion metadata (cycles, instructions)
//
// Results are written atomically (temp + rename, the checkpoint
// directory's convention), and result.upc is authoritative: its presence
// marks the instance completed, after which the checkpoint generations
// are deleted to bound disk use. Classification on resume needs no lock
// file — a crash between rename and generation cleanup just leaves
// harmless stale generations behind.

const manifestName = "farm.json"

func instanceDir(root string, id int) string {
	if root == "" {
		return ""
	}
	return filepath.Join(root, fmt.Sprintf("inst-%05d", id))
}

// resultMeta is the completion record next to the histogram.
type resultMeta struct {
	Profile      string
	Seed         int64
	Cycles       uint64
	Instructions uint64
}

// writeAtomic writes data as path via a temp file and rename, fsyncing
// before the rename so a crash cannot leave a half-written file under
// the final name.
func writeAtomic(path string, write func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// persistResult records a completed instance's histogram and metadata in
// its durable directory, then drops the now-redundant checkpoint
// generations. A nil dir (memory-only farm) is a no-op.
func persistResult(dir string, res *workload.Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "result.upc"), func(f *os.File) error {
		return res.Hist.Save(f)
	}); err != nil {
		return fmt.Errorf("farm: persisting histogram: %w", err)
	}
	meta := resultMeta{
		Profile:      res.Profile.Name,
		Seed:         res.Profile.Seed,
		Cycles:       res.Cycles,
		Instructions: res.Instructions,
	}
	if err := writeAtomic(filepath.Join(dir, "result.json"), func(f *os.File) error {
		return json.NewEncoder(f).Encode(&meta)
	}); err != nil {
		return fmt.Errorf("farm: persisting metadata: %w", err)
	}
	clearGenerations(dir)
	return nil
}

// clearGenerations best-effort deletes the checkpoint generations of a
// completed instance. Failure is harmless: result.upc already marks the
// instance done, stale generations just cost disk.
func clearGenerations(dir string) {
	d, err := checkpoint.Open(dir, 0)
	if err != nil {
		return
	}
	gens, err := d.Generations()
	if err != nil {
		return
	}
	for _, g := range gens {
		os.Remove(g)
	}
}

// loadResult loads a persisted instance result. All three returns nil
// means "not completed" (fresh or mid-run); a corrupt or half-written
// result also classifies as not completed, so the instance simply
// re-runs — determinism makes the re-run equivalent.
func loadResult(dir string) (*core.Histogram, *resultMeta, error) {
	if dir == "" {
		return nil, nil, nil
	}
	hf, err := os.Open(filepath.Join(dir, "result.upc"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("farm: reading persisted result: %w", err)
	}
	defer hf.Close()
	hist, err := core.LoadHistogram(hf)
	if err != nil {
		return nil, nil, nil // corrupt: re-run the instance
	}
	mf, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		return nil, nil, nil // half-persisted: re-run the instance
	}
	var meta resultMeta
	if err := json.Unmarshal(mf, &meta); err != nil {
		return nil, nil, nil
	}
	return hist, &meta, nil
}

// writeManifest records the farm's Config at the root (atomically), so a
// bare `vaxfarm -resume -checkpoint root` can rebuild the identical farm.
// An existing manifest is kept: the original farm's shape wins over
// whatever flags the resuming invocation happened to pass.
func writeManifest(root string, cfg Config) error {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return err
	}
	path := filepath.Join(root, manifestName)
	if _, err := os.Stat(path); err == nil {
		return nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("farm: manifest: %w", err)
	}
	if err := writeAtomic(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(&cfg)
	}); err != nil {
		return fmt.Errorf("farm: writing manifest: %w", err)
	}
	return nil
}

// Resume rebuilds a farm from the manifest under root. Completed
// instances load their persisted results without re-running; interrupted
// ones continue from their newest checkpoint generation; instances that
// never started run fresh. Scripted kills are not replayed — chaos is an
// input to a run, not a property of the farm.
func Resume(root string) (*Farm, error) {
	data, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return nil, fmt.Errorf("farm: no resumable farm under %s: %w", root, err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("farm: manifest under %s does not parse: %w", root, err)
	}
	cfg.Root = root
	cfg.Kills = nil
	return New(cfg)
}
