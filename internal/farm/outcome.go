package farm

import "fmt"

// Status is an instance's place in the farm lifecycle. Pending and
// Running are transient; the other four are the terminal states a
// ledger reports.
type Status uint8

// Instance statuses.
const (
	// StatusPending: queued, no attempt started yet.
	StatusPending Status = iota
	// StatusRunning: an attempt is in flight on some worker.
	StatusRunning
	// StatusCompleted: finished its full cycle budget on the first
	// attempt, no rescue needed; its histogram is in the merge.
	StatusCompleted
	// StatusRescued: finished its full cycle budget, but only after at
	// least one rescue or retry (worker death, panic, machine failure);
	// its histogram is in the merge and is bit-identical to what an
	// undisturbed run would have produced.
	StatusRescued
	// StatusShed: abandoned after exhausting its retry allowance or the
	// farm-wide failure budget; excluded from the merge so sustained
	// failure degrades coverage rather than poisoning results.
	StatusShed
	// StatusPaused: stopped by farm-wide interruption (signal or
	// deadline) with a final checkpoint where one was possible; a
	// resumed farm picks it back up.
	StatusPaused
	// NumStatuses bounds the enum for exhaustiveness checks.
	NumStatuses
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusCompleted:
		return "completed"
	case StatusRescued:
		return "rescued"
	case StatusShed:
		return "shed"
	case StatusPaused:
		return "paused"
	case NumStatuses:
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Terminal reports whether the status is an end state (nothing more
// will happen to the instance in this farm run).
func (s Status) Terminal() bool {
	switch s {
	case StatusCompleted, StatusRescued, StatusShed, StatusPaused:
		return true
	case StatusPending, StatusRunning, NumStatuses:
	}
	return false
}

// Outcome is one ledger row: what happened to one instance.
type Outcome struct {
	ID       int    // instance index
	Profile  string // workload profile name
	Status   Status
	Attempts int    // run attempts started (0 if never dispatched)
	Rescues  int    // attempts lost to worker death and re-run elsewhere
	Cause    string // why it shed or paused ("" for clean completion)
	Cycle    uint64 // machine cycle at the final event (budget if completed)
}

// WorkerPanic is the structured form of a panic recovered inside a
// worker's run attempt: the instance's fault, not the worker's. It
// crosses the farm boundary typed so callers can distinguish "the
// simulation blew up" from scheduling errors with errors.As.
type WorkerPanic struct {
	Worker   int // worker index that recovered the panic
	Instance int // instance whose attempt panicked
	Value    any // the recovered value
}

func (e *WorkerPanic) Error() string {
	return fmt.Sprintf("instance %d panicked on worker %d: %v", e.Instance, e.Worker, e.Value)
}

// PoolExhausted reports that every worker died before the work list
// drained; the remaining instances were shed.
type PoolExhausted struct {
	Dead int // workers lost
	Shed int // instances abandoned for want of a worker
}

func (e *PoolExhausted) Error() string {
	return fmt.Sprintf("all %d workers dead; %d instances shed", e.Dead, e.Shed)
}

// Interrupted reports a farm stopped before the work list drained — by
// signal, caller cancellation, or the farm deadline — with every live
// instance checkpointed (where a root directory was configured) so the
// whole farm can be resumed.
type Interrupted struct {
	Cause  error  // context.Canceled or context.DeadlineExceeded
	Root   string // checkpoint root ("" if none was configured)
	Paused int    // instances left resumable
}

func (e *Interrupted) Error() string {
	msg := fmt.Sprintf("farm interrupted: %v; %d instances paused", e.Cause, e.Paused)
	if e.Root != "" {
		msg += "; state under " + e.Root
	}
	return msg
}

func (e *Interrupted) Unwrap() error { return e.Cause }

// killed is the panic value of the worker kill switch. It is deliberately
// not an error: the kill switch models the worker goroutine dying
// (OOM-killed process, segfaulting cgo, pulled plug), so nothing in the
// attempt path may catch and "handle" it short of the worker's own
// recover, which translates it into worker death rather than an
// instance failure.
type killed struct{ worker int }
