package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vax780/internal/checkpoint"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/workload"
)

// eventKind classifies what a worker reports back to the coordinator
// about one dispatched attempt.
type eventKind uint8

const (
	// evCompleted: the instance finished its full cycle budget; its
	// histogram is in the worker's local store and its result persisted.
	evCompleted eventKind = iota
	// evFailed: the attempt ended in an error or a recovered panic;
	// err carries the typed cause. The instance may be retried.
	evFailed
	// evPaused: farm-wide cancellation or deadline stopped the attempt
	// with a final checkpoint; err is the *workload.Interrupted.
	evPaused
	// evDied: the worker's kill switch fired mid-attempt. The worker is
	// gone; the instance needs rescue on a surviving worker.
	evDied
)

// event is one attempt outcome, worker to coordinator.
type event struct {
	kind   eventKind
	worker int
	inst   *instance
	cycles uint64 // machine cycle at the outcome (budget on completion)
	err    error
}

// worker runs dispatched instances to completion, accumulating completed
// histograms in a per-profile local store that the coordinator merges —
// in worker-index order — after the pool drains. Nothing here locks: the
// local store is touched only by this goroutine until the coordinator's
// final merge, which happens after the worker has exited.
type worker struct {
	id       int
	ctx      context.Context
	dispatch <-chan *instance
	events   chan<- event
	wg       *sync.WaitGroup

	machine  cpu.Config
	every    uint64 // checkpoint period (cycles)
	watchdog uint64

	// Kill plumbing. killAfter is the scripted chaos switch: die after
	// that many chunk callbacks, cumulative across instances (0 = never).
	// kill is the runtime switch (Farm.KillWorker). Both are checked at
	// chunk boundaries, the only points where the supervised run loop
	// re-enters farm code.
	killAfter int
	chunks    int
	kill      *atomic.Bool

	local []*core.Histogram // per-profile sums of completed instances
}

func newWorker(id int, f *Farm, ctx context.Context, dispatch <-chan *instance,
	events chan<- event, wg *sync.WaitGroup) *worker {
	w := &worker{
		id:       id,
		ctx:      ctx,
		dispatch: dispatch,
		events:   events,
		wg:       wg,
		machine:  f.cfg.Machine,
		every:    f.cfg.CheckpointEvery,
		watchdog: f.cfg.Watchdog,
		kill:     &f.kills[id],
		local:    make([]*core.Histogram, len(f.profiles)),
	}
	for i := range w.local {
		w.local[i] = &core.Histogram{}
	}
	for _, k := range f.cfg.Kills {
		if k.Worker == id {
			w.killAfter = k.AfterChunks
		}
	}
	return w
}

// loop pulls instances until the dispatch channel closes or the worker
// dies. A dead worker reports its death (so the coordinator can rescue
// the in-flight instance) and returns without draining the channel.
func (w *worker) loop() {
	defer w.wg.Done()
	//vaxlint:allow ctxflow -- dispatch has exactly one closing owner (Farm.Run, proved by chanprot), and Run closes it on every exit path including pause; the range terminates without needing ctx.
	for inst := range w.dispatch {
		ev, dead := w.attempt(inst)
		//vaxlint:allow ctxflow -- the coordinator drains events unconditionally until outstanding==0, even while paused; guarding this send with ctx would drop the completion event Run's accounting is waiting for.
		w.events <- ev
		if dead {
			return
		}
	}
}

// attempt runs one instance once, converting every way the attempt can
// end — completion, typed failure, interruption, panic, kill — into one
// event. The recover distinguishes the kill-switch sentinel (worker
// death: the attempt wrote no final checkpoint, exactly like a process
// dying) from an instance panic (recovered into a typed *WorkerPanic and
// reported as a retryable failure).
func (w *worker) attempt(inst *instance) (ev event, dead bool) {
	var lastCycle uint64
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if k, ok := r.(killed); ok {
			ev = event{kind: evDied, worker: k.worker, inst: inst, cycles: lastCycle}
			dead = true
			return
		}
		ev = event{kind: evFailed, worker: w.id, inst: inst, cycles: lastCycle,
			err: &WorkerPanic{Worker: w.id, Instance: inst.id, Value: r}}
	}()

	sup := workload.Supervisor{
		CheckpointDir:   inst.dir,
		CheckpointEvery: w.every,
		Watchdog:        w.watchdog,
		OnChunk: func(cycle uint64) {
			lastCycle = cycle
			w.chunks++
			if w.kill.Load() || (w.killAfter > 0 && w.chunks >= w.killAfter) {
				panic(killed{worker: w.id})
			}
		},
	}
	res, err := w.execute(inst, sup)
	var intr *workload.Interrupted
	switch {
	case err == nil:
		if perr := persistResult(inst.dir, res); perr != nil {
			return event{kind: evFailed, worker: w.id, inst: inst, cycles: res.Cycles,
				err: fmt.Errorf("instance %d completed but its result did not persist: %w", inst.id, perr)}, false
		}
		w.local[inst.profIdx].Add(res.Hist)
		return event{kind: evCompleted, worker: w.id, inst: inst, cycles: res.Cycles}, false
	case errors.As(err, &intr):
		return event{kind: evPaused, worker: w.id, inst: inst, cycles: intr.Cycle, err: err}, false
	default:
		return event{kind: evFailed, worker: w.id, inst: inst, cycles: lastCycle,
			err: fmt.Errorf("instance %d: %w", inst.id, err)}, false
	}
}

// execute picks the run path for one attempt: resume from the newest
// checkpoint generation when the instance has one (the rescue path —
// bit-identical to never having been interrupted), fresh start otherwise.
func (w *worker) execute(inst *instance, sup workload.Supervisor) (*workload.Result, error) {
	if inst.dir != "" {
		d, err := checkpoint.Open(inst.dir, 0)
		if err != nil {
			return nil, fmt.Errorf("instance %d checkpoints: %w", inst.id, err)
		}
		gens, err := d.Generations()
		if err != nil {
			return nil, fmt.Errorf("instance %d checkpoints: %w", inst.id, err)
		}
		if len(gens) > 0 {
			return workload.ResumeSupervised(w.ctx, inst.dir, sup)
		}
	}
	return workload.RunSupervised(w.ctx, workload.Spec{
		Profile: inst.prof,
		Cycles:  inst.cycles,
		Machine: w.machine,
		Fault:   inst.fcfg,
	}, sup)
}
