package farm

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/workload"
)

// Small-but-real farm geometry for tests: enough instances to spread
// across profiles and workers, enough chunks per instance for kills to
// land mid-run.
const (
	testInstances = 6
	testCycles    = 400_000
	testEvery     = 50_000
)

func testConfig(t *testing.T, workers int) Config {
	t.Helper()
	return Config{
		Instances:       testInstances,
		Workers:         workers,
		Cycles:          testCycles,
		CheckpointEvery: testEvery,
		Root:            t.TempDir(),
		BackoffBase:     time.Millisecond,
	}
}

func histBytes(t *testing.T, h *core.Histogram) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := h.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func runFarm(t *testing.T, cfg Config) *Result {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("farm run: %v", err)
	}
	return res
}

// expectHists computes the ground truth the farm must reproduce: each
// instance run alone on a single machine through the plain (unsupervised)
// path, summed per profile in instance order.
func expectHists(t *testing.T, cfg Config) []*core.Histogram {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]*core.Histogram, len(f.profiles))
	for i := range sums {
		sums[i] = &core.Histogram{}
	}
	for _, inst := range f.insts {
		var plane *fault.Plane
		if inst.fcfg != nil {
			plane = fault.NewPlane(*inst.fcfg)
		}
		r, err := workload.RunInjected(inst.prof, inst.cycles, cpu.Config{}, plane)
		if err != nil {
			t.Fatalf("ground-truth run of instance %d: %v", inst.id, err)
		}
		sums[inst.profIdx].Add(r.Hist)
	}
	return sums
}

func assertMergeEquals(t *testing.T, res *Result, want []*core.Histogram) {
	t.Helper()
	merged := &core.Histogram{}
	for pi, sum := range want {
		if got, exp := histBytes(t, res.ByProfile[pi].Hist), histBytes(t, sum); !bytes.Equal(got, exp) {
			t.Errorf("profile %s: farm histogram differs from ground truth", res.ByProfile[pi].Name)
		}
		merged.Add(sum)
	}
	if !bytes.Equal(histBytes(t, res.Merged), histBytes(t, merged)) {
		t.Error("merged composite differs from ground truth")
	}
}

// TestFarmCleanSweep: with nothing going wrong, the farm's per-profile
// and composite histograms are bit-identical to running every instance
// alone on a single machine.
func TestFarmCleanSweep(t *testing.T) {
	cfg := testConfig(t, 3)
	res := runFarm(t, cfg)
	if res.Completed != testInstances || res.Shed+res.Paused+res.Rescued != 0 {
		t.Fatalf("clean sweep ledger: %+v", res.Ledger)
	}
	assertMergeEquals(t, res, expectHists(t, cfg))
}

// TestFarmWorkerCountInvariance: the merge is independent of how the
// instances were sharded — one worker and four workers produce
// bit-identical results.
func TestFarmWorkerCountInvariance(t *testing.T) {
	one := runFarm(t, testConfig(t, 1))
	four := runFarm(t, testConfig(t, 4))
	if !bytes.Equal(histBytes(t, one.Merged), histBytes(t, four.Merged)) {
		t.Error("merged composite depends on worker count")
	}
	for pi := range one.ByProfile {
		if !bytes.Equal(histBytes(t, one.ByProfile[pi].Hist), histBytes(t, four.ByProfile[pi].Hist)) {
			t.Errorf("profile %s depends on worker count", one.ByProfile[pi].Name)
		}
	}
}

// TestFarmChaosRescue is the PR's oracle: workers killed mid-sweep while
// the fault plane injects in-machine chaos, and the merged histograms —
// composite and per profile — are still bit-identical to the unperturbed
// same-seed run. Rescue must not perturb results.
func TestFarmChaosRescue(t *testing.T) {
	defer checkGoroutineLeak(t)()
	var sched [fault.NumPoints]fault.Schedule
	sched[fault.CacheParity] = fault.Schedule{Every: 120_000}
	sched[fault.TBParity] = fault.Schedule{Every: 170_000}
	fcfg := &fault.Config{Seed: 7, Sched: sched}

	clean := testConfig(t, 3)
	clean.Fault = fcfg
	cleanRes := runFarm(t, clean)
	if cleanRes.Completed != testInstances {
		t.Fatalf("unperturbed chaos-plane run did not complete: %+v", cleanRes.Ledger)
	}

	chaos := testConfig(t, 3)
	chaos.Fault = fcfg
	chaos.Kills = []Kill{{Worker: 0, AfterChunks: 3}, {Worker: 2, AfterChunks: 7}}
	f, err := New(chaos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if res.Completed != testInstances {
		t.Fatalf("chaos run shed or paused instances: %+v", res.Ledger)
	}
	if res.Lost != 2 {
		t.Errorf("workers lost = %d, want 2", res.Lost)
	}
	if res.Rescued == 0 {
		t.Error("no instance was rescued; the kills missed every in-flight run")
	}
	for _, o := range res.Ledger {
		if o.Status == StatusRescued && o.Rescues == 0 && o.Attempts <= 1 {
			t.Errorf("instance %d marked rescued without a rescue or retry", o.ID)
		}
	}

	if !bytes.Equal(histBytes(t, res.Merged), histBytes(t, cleanRes.Merged)) {
		t.Error("chaos-run composite differs from unperturbed same-seed run")
	}
	for pi := range res.ByProfile {
		if !bytes.Equal(histBytes(t, res.ByProfile[pi].Hist), histBytes(t, cleanRes.ByProfile[pi].Hist)) {
			t.Errorf("chaos-run profile %s differs from unperturbed same-seed run", res.ByProfile[pi].Name)
		}
	}
}

// TestFarmPoolExhaustion: killing every worker sheds the remaining
// instances into the ledger — with causes — and reports the typed
// *PoolExhausted, instead of hanging or merging partial counts.
func TestFarmPoolExhaustion(t *testing.T) {
	defer checkGoroutineLeak(t)()
	cfg := testConfig(t, 2)
	cfg.Kills = []Kill{{Worker: 0, AfterChunks: 2}, {Worker: 1, AfterChunks: 3}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	var pe *PoolExhausted
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PoolExhausted", err)
	}
	if res == nil || res.Shed == 0 || res.Shed != pe.Shed {
		t.Fatalf("result after exhaustion: %+v (err %v)", res, err)
	}
	for _, o := range res.Ledger {
		if o.Status == StatusShed && o.Cause == "" {
			t.Errorf("shed instance %d has no cause", o.ID)
		}
	}
}

// TestFarmPauseResume: cancelling a farm mid-sweep pauses every live
// instance behind a checkpoint and a typed *Interrupted; resuming from
// the root completes the sweep with results bit-identical to an
// undisturbed farm.
func TestFarmPauseResume(t *testing.T) {
	cfg := testConfig(t, 2)

	undisturbed := cfg
	undisturbed.Root = t.TempDir()
	want := runFarm(t, undisturbed)

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Land the cancel mid-sweep; any point works — the equality
		// below must hold wherever it lands.
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	res, err := f.Run(ctx)
	var intr *Interrupted
	if err == nil {
		// The sweep beat the cancel; nothing was paused. Still a valid
		// (if less interesting) pass of the equality check.
		t.Log("farm completed before the cancel landed")
	} else if !errors.As(err, &intr) {
		t.Fatalf("err = %v, want *Interrupted", err)
	} else if res.Paused == 0 {
		t.Fatalf("interrupted with nothing paused: %+v", res.Ledger)
	}

	resumed, err := Resume(cfg.Root)
	if err != nil {
		t.Fatal(err)
	}
	final, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if final.Completed != testInstances {
		t.Fatalf("resumed farm did not complete: %+v", final.Ledger)
	}
	if !bytes.Equal(histBytes(t, final.Merged), histBytes(t, want.Merged)) {
		t.Error("resumed farm composite differs from undisturbed farm")
	}
}

// TestFarmRetryAndShed: a deterministically failing instance (control-
// store parity storm blowing the kernel's machine-check budget) is
// retried up to its allowance with backoff, then shed with a cause —
// while healthy instances complete untouched.
func TestFarmRetryAndShed(t *testing.T) {
	var sched [fault.NumPoints]fault.Schedule
	sched[fault.CSParity] = fault.Schedule{Every: 25}
	cfg := testConfig(t, 2)
	cfg.Instances = 2
	cfg.Fault = &fault.Config{Seed: 3, Sched: sched}
	cfg.Retries = 1

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("farm run: %v", err)
	}
	if res.Shed == 0 {
		t.Skip("CS parity storm did not kill the kernel at this geometry")
	}
	for _, o := range res.Ledger {
		if o.Status != StatusShed {
			continue
		}
		if o.Attempts != cfg.Retries+1 {
			t.Errorf("instance %d shed after %d attempts, want %d", o.ID, o.Attempts, cfg.Retries+1)
		}
		if o.Cause == "" {
			t.Errorf("instance %d shed without a cause", o.ID)
		}
	}
}
