// Package farm is the fleet supervisor: it shards N machine-instances
// across W worker goroutines, runs each through the supervised
// checkpoint/resume path of internal/workload, and merges the per-worker
// local histograms into one composite in a deterministic order.
//
// The paper characterized one VAX-11/780 over five hours of live traffic
// (§2.2); this package's job is the scaled-up equivalent — thousands of
// simulated 780s measured in parallel — and at that scale the harness
// itself must survive partial failure. The invariant everything here
// defends: partial failure must never silently bias the merged
// histograms. A worker panic becomes a typed error and a retried
// instance; a killed worker's in-flight instance is rescued — resumed
// from its newest checkpoint generation on a surviving worker, which is
// bit-identical to never having been disturbed (the checkpoint layer's
// proven contract); sustained failure sheds instances into an explicit
// outcome ledger instead of merging partial counts; and farm-wide
// interruption checkpoints every live instance for a later resume.
// TestFarmChaosRescue holds the whole stack to that invariant under
// -race, with workers dying mid-sweep and the fault plane active.
package farm

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/fault"
	"vax780/internal/workload"
)

// SeedStride separates consecutive instances' generation seeds. It must
// dodge the per-process offset inside one instance (base + proc*1000,
// proc < 6), so two instances can never generate an identical program:
// being coprime to 1000 and larger than any in-instance span does it.
const SeedStride = 1_000_003

// Kill scripts a chaos event: worker Worker dies after its AfterChunks-th
// checkpoint chunk (cumulative across the instances it runs). Chunk
// boundaries are the only points where the supervised run loop re-enters
// farm code, so they are where death can land mid-instance.
type Kill struct {
	Worker      int
	AfterChunks int
}

// ParseKills parses a chaos script of "worker@chunk" pairs ("0@5,2@9"),
// the spelling both vaxfarm -chaos and vaxbench -chaos accept.
func ParseKills(spec string) ([]Kill, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var kills []Kill
	for _, field := range strings.Split(spec, ",") {
		w, after, ok := strings.Cut(strings.TrimSpace(field), "@")
		if !ok {
			return nil, fmt.Errorf(`farm: bad chaos field %q: want "worker@chunk"`, field)
		}
		wi, err1 := strconv.Atoi(w)
		ai, err2 := strconv.Atoi(after)
		if err1 != nil || err2 != nil || ai <= 0 {
			return nil, fmt.Errorf(`farm: bad chaos field %q: want "worker@chunk" with positive chunk`, field)
		}
		kills = append(kills, Kill{Worker: wi, AfterChunks: ai})
	}
	return kills, nil
}

// Config sizes and shapes a farm. The zero value of every optional field
// picks a documented default.
type Config struct {
	// Instances is the number of machine-instances to measure (required).
	// Instance i runs profile Profiles[i%len(Profiles)] with generation
	// seed derived as registry seed + i*SeedStride, so every instance is
	// a distinct, deterministically reconstructible measurement.
	Instances int
	// Workers is the worker-pool width (default 4).
	Workers int
	// Cycles is the per-instance cycle budget (required).
	Cycles uint64
	// Profiles names the workload rotation (default: all five of §2.2).
	Profiles []string
	// Machine configures every instance's machine.
	Machine cpu.Config
	// Fault, when set, attaches a fault-injection plane to every
	// instance, with the stream seed decorrelated per instance (nil =
	// clean runs).
	Fault *fault.Config
	// Root, when set, is the durable state directory: per-instance
	// checkpoint generations and completed results live under it, and
	// a farm.json manifest makes the whole farm resumable with Resume.
	// Empty keeps everything in memory — rescue then restarts instances
	// from cycle zero instead of their newest checkpoint.
	Root string
	// CheckpointEvery is the per-instance checkpoint period in cycles
	// (workload.DefaultCheckpointEvery when zero).
	CheckpointEvery uint64
	// Watchdog is the per-instance progress watchdog budget in cycles
	// (workload.DefaultWatchdogCycles when zero): a wedged instance
	// becomes a typed failure, not a stuck worker.
	Watchdog uint64
	// Retries caps how many times one instance is re-attempted after a
	// failure before it is shed (default 2). Rescues after worker death
	// do not count against it — they are the farm's fault.
	Retries int
	// FailureBudget caps total failed attempts across the farm; past it
	// every further failure sheds its instance immediately (graceful
	// degradation instead of retry storms). Default: Instances.
	FailureBudget int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// before a failed instance is retried (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Deadline bounds the farm's wall-clock time (none when zero); an
	// expired deadline checkpoints every live instance and returns
	// *Interrupted, exactly like a signal.
	Deadline time.Duration
	// Kills scripts worker deaths for chaos runs and tests.
	Kills []Kill
}

// normalized fills defaults into a copy of the config.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if len(c.Profiles) == 0 {
		for _, p := range workload.All() {
			c.Profiles = append(c.Profiles, p.Name)
		}
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = workload.DefaultCheckpointEvery
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.FailureBudget == 0 {
		c.FailureBudget = c.Instances
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	return c
}

// instance is one machine-instance's slot in the farm: its derived
// workload, durable locations, and running ledger fields. All mutation
// happens on the coordinator goroutine; workers only read the immutable
// identity fields (id, profIdx, prof, fcfg, dir, cycles).
type instance struct {
	id      int
	profIdx int // index into the farm's profile rotation
	prof    workload.Profile
	fcfg    *fault.Config
	dir     string // durable directory ("" without a Root)
	cycles  uint64

	status   Status
	attempts int
	rescues  int
	cause    string
	cycle    uint64
}

// ProfileSum is one profile's share of the merge.
type ProfileSum struct {
	Name      string
	Hist      *core.Histogram
	Instances int // completed instances contributing
}

// Result is what a farm run produced: the merged composite, the same
// counts split by profile, and the per-instance outcome ledger.
type Result struct {
	Merged    *core.Histogram
	ByProfile []ProfileSum
	Ledger    []Outcome
	Completed int // includes rescued
	Rescued   int
	Shed      int
	Paused    int
	Failures  int // failed attempts observed (retried or shed)
	Lost      int // workers dead at the end
	Cycles    uint64 // cycles contributed to the merge
}

// Farm is a configured fleet. Build one with New (or Resume), run it
// once with Run.
type Farm struct {
	cfg      Config
	profiles []workload.Profile
	insts    []*instance
	kills    []atomic.Bool // runtime kill switches, one per worker
	ran      atomic.Bool
}

// New validates and prepares a farm.
func New(cfg Config) (*Farm, error) {
	cfg = cfg.normalized()
	if cfg.Instances <= 0 {
		return nil, fmt.Errorf("farm: Instances must be positive, got %d", cfg.Instances)
	}
	if cfg.Cycles == 0 {
		return nil, fmt.Errorf("farm: Cycles must be positive")
	}
	f := &Farm{cfg: cfg, kills: make([]atomic.Bool, cfg.Workers)}
	for _, name := range cfg.Profiles {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("farm: unknown workload profile %q", name)
		}
		f.profiles = append(f.profiles, p)
	}
	for _, k := range cfg.Kills {
		if k.Worker < 0 || k.Worker >= cfg.Workers {
			return nil, fmt.Errorf("farm: kill targets worker %d of %d", k.Worker, cfg.Workers)
		}
	}
	for i := 0; i < cfg.Instances; i++ {
		f.insts = append(f.insts, f.deriveInstance(i))
	}
	return f, nil
}

// deriveInstance builds instance i's identity. The derivation is pure in
// (Config, i): resuming a farm from its manifest reconstructs the exact
// same instances.
func (f *Farm) deriveInstance(i int) *instance {
	profIdx := i % len(f.profiles)
	p := f.profiles[profIdx]
	p.Seed += int64(i) * SeedStride
	var fc *fault.Config
	if f.cfg.Fault != nil {
		c := *f.cfg.Fault
		// Decorrelate the instance's injection streams the same way the
		// plane decorrelates its per-point streams from one seed.
		c.Seed += uint64(i) * 0x9E3779B97F4A7C15
		fc = &c
	}
	return &instance{
		id:      i,
		profIdx: profIdx,
		prof:    p,
		fcfg:    fc,
		dir:     instanceDir(f.cfg.Root, i),
		cycles:  f.cfg.Cycles,
		status:  StatusPending,
	}
}

// KillWorker arms worker w's kill switch: it dies at its next chunk
// boundary, abandoning its in-flight instance to rescue. Safe to call
// from any goroutine while Run is in flight — it is the demo/chaos
// entry point, not part of the measurement path.
func (f *Farm) KillWorker(w int) error {
	if w < 0 || w >= len(f.kills) {
		return fmt.Errorf("farm: no worker %d (pool of %d)", w, len(f.kills))
	}
	f.kills[w].Store(true)
	return nil
}

// delayedRetry is a failed instance waiting out its backoff.
type delayedRetry struct {
	at   time.Time
	inst *instance
}

// Run executes the farm to drain: every instance completed, shed, or
// paused. It returns the merged result together with a typed error for
// the two non-clean endings — *Interrupted (resumable pause) and
// *PoolExhausted (every worker died). The Result is meaningful in all
// three cases; the ledger says exactly which instances stand where.
func (f *Farm) Run(ctx context.Context) (*Result, error) {
	if f.ran.Swap(true) {
		return nil, fmt.Errorf("farm: Run called twice on one Farm")
	}
	cfg := f.cfg
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}

	resumed := make([]*core.Histogram, len(f.profiles))
	for i := range resumed {
		resumed[i] = &core.Histogram{}
	}
	var resumedCycles uint64
	var queue []*instance
	if cfg.Root != "" {
		if err := writeManifest(cfg.Root, cfg); err != nil {
			return nil, err
		}
	}
	for _, inst := range f.insts {
		// Classify what an earlier run already finished: a persisted
		// result short-circuits the instance; anything else re-runs
		// (from its newest checkpoint, if it has one).
		if hist, meta, err := loadResult(inst.dir); err != nil {
			return nil, err
		} else if hist != nil {
			inst.status = StatusCompleted
			inst.cycle = meta.Cycles
			resumed[inst.profIdx].Add(hist)
			resumedCycles += meta.Cycles
			continue
		}
		queue = append(queue, inst)
	}

	dispatch := make(chan *instance)
	events := make(chan event)
	var wg sync.WaitGroup
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = newWorker(i, f, ctx, dispatch, events, &wg)
		wg.Add(1)
		go workers[i].loop()
	}

	var (
		outstanding int
		live        = cfg.Workers
		failures    int
		delayed     []delayedRetry
		paused      bool
		pauseCause  error
		// One reusable retry timer for the whole loop: a time.After per
		// iteration would strand a live timer every pass until it fired
		// (the goleak analyzer's stranded-timer rule).
		retryTimer *time.Timer
	)
	shed := func(inst *instance, cause string, cycle uint64) {
		inst.status = StatusShed
		inst.cause = cause
		inst.cycle = cycle
	}
	pause := func(inst *instance, cause string, cycle uint64) {
		inst.status = StatusPaused
		inst.cause = cause
		inst.cycle = cycle
	}
	// parkQueued empties the queue and the backoff pen into a terminal
	// state — paused on interruption, shed on pool exhaustion.
	parkQueued := func(park func(*instance, string, uint64), cause string) {
		for _, inst := range queue {
			park(inst, cause, inst.cycle)
		}
		for _, d := range delayed {
			park(d.inst, cause, d.inst.cycle)
		}
		queue, delayed = nil, nil
	}

	for {
		if live == 0 && outstanding == 0 && len(queue)+len(delayed) > 0 {
			parkQueued(shed, "no workers left")
		}
		if outstanding == 0 && len(queue) == 0 && len(delayed) == 0 {
			break
		}
		var dispatchCh chan *instance
		if !paused && live > 0 && len(queue) > 0 {
			dispatchCh = dispatch
		}
		var timerC <-chan time.Time
		if !paused && len(delayed) > 0 {
			next := delayed[0].at
			for _, d := range delayed[1:] {
				if d.at.Before(next) {
					next = d.at
				}
			}
			if retryTimer == nil {
				retryTimer = time.NewTimer(time.Until(next))
			} else {
				// Stop+drain before Reset: if the timer fired while we were
				// in another arm, its tick is still sitting in C.
				if !retryTimer.Stop() {
					select {
					case <-retryTimer.C:
					default:
					}
				}
				retryTimer.Reset(time.Until(next))
			}
			timerC = retryTimer.C
		}
		var doneC <-chan struct{}
		if !paused {
			doneC = ctx.Done()
		}

		select {
		case dispatchCh <- peek(queue):
			inst := queue[0]
			queue = queue[1:]
			inst.status = StatusRunning
			inst.attempts++
			outstanding++

		case now := <-timerC:
			rest := delayed[:0]
			for _, d := range delayed {
				if !d.at.After(now) {
					queue = append(queue, d.inst)
				} else {
					rest = append(rest, d)
				}
			}
			delayed = rest

		case <-doneC:
			paused = true
			pauseCause = ctx.Err()
			parkQueued(pause, fmt.Sprintf("farm interrupted before start: %v", pauseCause))

		case ev := <-events:
			outstanding--
			switch ev.kind {
			case evCompleted:
				if ev.inst.rescues > 0 || ev.inst.attempts > 1 {
					ev.inst.status = StatusRescued
				} else {
					ev.inst.status = StatusCompleted
				}
				ev.inst.cycle = ev.cycles

			case evPaused:
				pause(ev.inst, ev.err.Error(), ev.cycles)

			case evFailed:
				failures++
				switch {
				case paused:
					// No retries during a pause drain; the resume gets
					// a fresh attempt allowance anyway.
					pause(ev.inst, ev.err.Error(), ev.cycles)
				case ev.inst.attempts > cfg.Retries:
					shed(ev.inst, fmt.Sprintf("retries exhausted: %v", ev.err), ev.cycles)
				case failures > cfg.FailureBudget:
					shed(ev.inst, fmt.Sprintf("failure budget exhausted: %v", ev.err), ev.cycles)
				default:
					ev.inst.status = StatusPending
					ev.inst.cycle = ev.cycles
					delay := backoff(cfg.BackoffBase, cfg.BackoffCap, ev.inst.attempts)
					delayed = append(delayed, delayedRetry{at: time.Now().Add(delay), inst: ev.inst})
				}

			case evDied:
				live--
				ev.inst.rescues++
				ev.inst.cycle = ev.cycles
				switch {
				case paused:
					pause(ev.inst, fmt.Sprintf("worker %d died during pause drain", ev.worker), ev.cycles)
				case live == 0:
					shed(ev.inst, fmt.Sprintf("worker %d died with no survivors", ev.worker), ev.cycles)
				default:
					// Rescue: head of the queue, no backoff — the
					// instance did nothing wrong, and its newest
					// checkpoint generation is ready on disk.
					ev.inst.status = StatusPending
					queue = append([]*instance{ev.inst}, queue...)
				}
			}
		}
	}
	if retryTimer != nil {
		retryTimer.Stop()
	}
	close(dispatch)
	//vaxlint:allow ctxflow -- bounded: dispatch just closed above, so every worker falls out of its range loop after at most one in-flight attempt, and attempts themselves are ctx-supervised via workload.RunSupervised.
	wg.Wait()

	res := f.merge(workers, resumed, resumedCycles)
	res.Failures = failures
	res.Lost = cfg.Workers - live
	if paused {
		return res, &Interrupted{Cause: pauseCause, Root: cfg.Root, Paused: res.Paused}
	}
	if live == 0 && res.Shed > 0 {
		return res, &PoolExhausted{Dead: cfg.Workers, Shed: res.Shed}
	}
	return res, nil
}

// peek returns the queue head without popping (nil on empty, which only
// feeds a disabled select case).
func peek(queue []*instance) *instance {
	if len(queue) == 0 {
		return nil
	}
	return queue[0]
}

// backoff is the capped exponential retry delay for attempt n (1-based).
func backoff(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// merge folds the per-worker local stores into per-profile sums and one
// composite, in (profile, resumed-then-worker-index) order. Every
// addition is a uint64 add or a bit-OR (core.Histogram.Add), so the sum
// is independent of which worker ran what — the property the merge
// determinism tests pin down.
func (f *Farm) merge(workers []*worker, resumed []*core.Histogram, resumedCycles uint64) *Result {
	res := &Result{Merged: &core.Histogram{}, Cycles: resumedCycles}
	for pi := range f.profiles {
		sum := &core.Histogram{}
		sum.Add(resumed[pi])
		for _, w := range workers {
			sum.Add(w.local[pi])
		}
		res.ByProfile = append(res.ByProfile, ProfileSum{Name: f.profiles[pi].Name, Hist: sum})
		res.Merged.Add(sum)
	}
	for _, inst := range f.insts {
		o := Outcome{
			ID:       inst.id,
			Profile:  inst.prof.Name,
			Status:   inst.status,
			Attempts: inst.attempts,
			Rescues:  inst.rescues,
			Cause:    inst.cause,
			Cycle:    inst.cycle,
		}
		res.Ledger = append(res.Ledger, o)
		switch inst.status {
		case StatusCompleted:
			res.Completed++
			res.ByProfile[inst.profIdx].Instances++
		case StatusRescued:
			res.Completed++
			res.Rescued++
			res.ByProfile[inst.profIdx].Instances++
		case StatusShed:
			res.Shed++
		case StatusPaused:
			res.Paused++
		case StatusPending, StatusRunning, NumStatuses:
			// Unreachable after drain; keep the enum switch exhaustive.
		}
		if inst.status == StatusCompleted || inst.status == StatusRescued {
			if inst.attempts > 0 { // freshly run this Run, not preloaded
				res.Cycles += inst.cycle
			}
		}
	}
	return res
}
