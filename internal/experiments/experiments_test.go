package experiments

import (
	"strings"
	"sync"
	"testing"

	"vax780/internal/cpu"
)

// The context is expensive; build it once for the package's tests.
var (
	ctxOnce sync.Once
	testCtx *Context
	ctxErr  error
)

func sharedCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		testCtx, ctxErr = NewContext(700_000, cpu.Config{MemBytes: 4 << 20})
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return testCtx
}

func TestContextBasics(t *testing.T) {
	ctx := sharedCtx(t)
	if ctx.Rep.Instructions == 0 {
		t.Fatal("no instructions measured")
	}
	if len(ctx.Comp.Runs) != 5 {
		t.Errorf("composite should hold 5 runs, got %d", len(ctx.Comp.Runs))
	}
	if ctx.MachInstr < ctx.Rep.Instructions {
		t.Errorf("machine instructions %d < measured %d", ctx.MachInstr, ctx.Rep.Instructions)
	}
}

func TestRunAllProducesEveryExperiment(t *testing.T) {
	outs := RunAll(sharedCtx(t))
	wantIDs := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "F1", "S4.1", "S4.2", "S5"}
	if len(outs) != len(wantIDs) {
		t.Fatalf("experiments = %d, want %d", len(outs), len(wantIDs))
	}
	for i, o := range outs {
		if o.ID != wantIDs[i] {
			t.Errorf("experiment %d ID = %s, want %s", i, o.ID, wantIDs[i])
		}
		if o.Text == "" {
			t.Errorf("%s: empty rendering", o.ID)
		}
		if len(o.Checks) == 0 {
			t.Errorf("%s: no shape checks", o.ID)
		}
	}
}

func TestEveryTableMentionsPaperAndMeasured(t *testing.T) {
	for _, o := range RunAll(sharedCtx(t)) {
		if o.ID == "F1" {
			continue // the figure is a diagram, not a paper/measured table
		}
		low := strings.ToLower(o.Text)
		if !strings.Contains(low, "paper") || !strings.Contains(low, "meas") {
			t.Errorf("%s rendering lacks paper/measured columns", o.ID)
		}
	}
}

func TestFigure1Connectivity(t *testing.T) {
	out := Figure1(sharedCtx(t))
	if out.Fails != 0 {
		t.Errorf("block diagram connectivity checks failed:\n%s", out.Text)
	}
	if !strings.Contains(out.Text, "Translation Buffer") {
		t.Error("rendering missing components")
	}
}

func TestSummaryFormat(t *testing.T) {
	outs := RunAll(sharedCtx(t))
	s := Summary(outs)
	if !strings.Contains(s, "TOTAL:") {
		t.Errorf("summary missing total: %s", s)
	}
	for _, id := range []string{"T1", "T8", "S4.2"} {
		if !strings.Contains(s, id) {
			t.Errorf("summary missing %s", id)
		}
	}
}

// TestShortCompositeShapeHighlights asserts the paper's headline
// qualitative results hold even on a short measurement (the full-length
// check is cmd/vaxrepro / the benchmarks).
func TestShortCompositeShapeHighlights(t *testing.T) {
	ctx := sharedCtx(t)
	r := ctx.Rep
	if cpi := r.CPI(); cpi < 7 || cpi > 14 {
		t.Errorf("CPI %.2f out of the paper's neighbourhood", cpi)
	}
	// SIMPLE dominates executions.
	if f := r.GroupFreq(0); f < 0.7 {
		t.Errorf("SIMPLE frequency %.2f, want > 0.7", f)
	}
	// Decode compute is exactly one cycle per instruction on the 780.
	if d := r.Timing[0].Compute; d < 0.999 || d > 1.001 {
		t.Errorf("decode compute %.3f, want 1.0", d)
	}
	// Reads outnumber writes roughly 2:1.
	ratio := r.TimingTotal.Read / r.TimingTotal.Write
	if ratio < 1.1 || ratio > 3.5 {
		t.Errorf("read:write ratio %.2f far from ~2", ratio)
	}
}
