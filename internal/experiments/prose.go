package experiments

import (
	"strings"

	"vax780/internal/core"
	"vax780/internal/paper"
	"vax780/internal/report"
	"vax780/internal/vax"
)

// Section5Prose reproduces the quantitative claims the paper makes in
// prose around Tables 2 and 9 (§3.1, §5), beyond the tables themselves:
//
//   - "about 9 out of 10 loop branches actually branched. Therefore the
//     average number of iterations of all loops ... was about 10";
//   - "with around 4 reads and writes per average CALL/RET or PUSHR/POPR
//     instruction we conclude that about 8 registers are being pushed and
//     popped";
//   - "the average character instruction reads and writes 9 to 11
//     longwords, so the average size of a character string is 36-44
//     characters";
//   - "the computation associated with the average simple instruction is
//     quite simple: a little over one cycle";
//   - "the range of cycle time requirements ... covers two orders of
//     magnitude".
func Section5Prose(ctx *Context) Outcome {
	var sb strings.Builder
	r := ctx.Rep

	// Loop iterations from the taken ratio: a loop of n iterations takes
	// its back-edge n-1 times of n executions.
	loop := r.PCClasses[vax.PCLoop]
	iters := 0.0
	if loop.Entries > loop.Taken {
		iters = float64(loop.Entries) / float64(loop.Entries-loop.Taken)
	}

	// Reads+writes per average CALL/RET instruction (Table 9 arithmetic).
	mem := map[string]core.MemOpRow{}
	for _, row := range r.MemOps {
		mem[row.Label] = row
	}
	perGroup := func(label string, g vax.Group) (reads, writes float64) {
		if r.Groups[g] == 0 {
			return 0, 0
		}
		scale := float64(r.Instructions) / float64(r.Groups[g])
		return mem[label].Reads * scale, mem[label].Writes * scale
	}
	crReads, crWrites := perGroup("Call/Ret", vax.GroupCallRet)
	regsPushed := (crReads + crWrites) // each pushed register is one write and one later read

	chReads, chWrites := perGroup("Character", vax.GroupCharacter)
	_ = chWrites
	strBytes := 4 * chReads // longwords read per character instruction

	simpleCycles := r.WithinGroup(vax.GroupSimple).Compute
	spread := safeDiv(r.WithinGroup(vax.GroupCharacter).Total(),
		r.WithinGroup(vax.GroupSimple).Total())

	rows := [][]string{
		{"Loop iterations (from %taken)", report.F(paper.LoopIterations, 1), report.F(iters, 1)},
		{"Regs pushed+popped per CALL/RET", report.F(paper.CallRetRegs, 1), report.F(regsPushed, 1)},
		{"Character string bytes", report.F(paper.CharStringBytes, 0), report.F(strBytes, 0)},
		{"Simple execute compute cycles", "1.0+", report.F(simpleCycles, 2)},
		{"Character:Simple cost spread", "~100x", report.F(spread, 0) + "x"},
	}
	report.Table(&sb, "Section 5 prose claims",
		[]string{"claim", "paper", "measured"}, rows)

	checks := []report.Check{
		{Name: "loop iterations ~10", Paper: paper.LoopIterations, Measured: iters, RelTol: 0.45},
		{Name: "regs per CALL/RET ~8", Paper: paper.CallRetRegs, Measured: regsPushed, RelTol: 0.45},
		{Name: "string bytes 36-44", Paper: paper.CharStringBytes, Measured: strBytes, RelTol: 0.5},
		{Name: "simple compute ~1 cycle", Paper: 1.04, Measured: simpleCycles, RelTol: 0.4},
		{Name: "two-orders-of-magnitude spread", Paper: 100, Measured: spread, RelTol: 0.7},
	}
	return finish("S5", "Prose claims of Section 5", &sb, checks)
}
