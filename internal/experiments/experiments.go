// Package experiments reproduces every table and figure of the paper's
// evaluation: it runs the five-workload composite on the simulated
// VAX-11/780 under the µPC monitor, reduces the histogram, renders each
// table next to the published numbers, and checks that the shape of every
// result holds (who wins, by roughly what factor).
package experiments

import (
	"fmt"
	"strings"

	"vax780/internal/cache"
	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/paper"
	"vax780/internal/report"
	"vax780/internal/tb"
	"vax780/internal/ucode"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

// Context is one composite measurement shared by all experiments.
type Context struct {
	Comp  *workload.Composite
	Rep   *core.Report
	Cache cache.Stats
	IB    cpu.IBStats
	TBS   tb.Stats
	HW    cpu.HWCounters
	// MachInstr counts machine-level instructions (including the null
	// process, which the monitor excludes).
	MachInstr uint64
	// Machine is a reference machine used for Figure 1 (topology).
	Machine *cpu.Machine
}

// NewContext measures the composite of the five workloads, cyclesEach
// cycles per workload.
func NewContext(cyclesEach uint64, mcfg cpu.Config) (*Context, error) {
	comp, err := workload.RunComposite(cyclesEach, mcfg)
	if err != nil {
		return nil, err
	}
	return NewContextFromComposite(comp, mcfg), nil
}

// NewContextFromComposite wraps an already-measured composite (e.g. one
// assembled by workload.RunCompositeSupervised from checkpointed runs)
// in an experiment context. Deterministic resume makes the resulting
// tables bit-identical to an uninterrupted NewContext measurement.
func NewContextFromComposite(comp *workload.Composite, mcfg cpu.Config) *Context {
	cs, ib, ts, hw, instr := comp.HWTotals()
	return &Context{
		Comp:      comp,
		Rep:       core.Reduce(comp.Hist, cpu.CS),
		Cache:     cs,
		IB:        ib,
		TBS:       ts,
		HW:        hw,
		MachInstr: instr,
		Machine:   cpu.New(mcfg),
	}
}

// Outcome is one experiment's rendered result.
type Outcome struct {
	ID     string
	Title  string
	Text   string
	Checks []report.Check
	Fails  int
}

func finish(id, title string, sb *strings.Builder, checks []report.Check) Outcome {
	fails := report.Checks(sb, "shape checks ("+id+")", checks)
	return Outcome{ID: id, Title: title, Text: sb.String(), Checks: checks, Fails: fails}
}

// perInstr divides an event count by measured instructions.
func (ctx *Context) perInstr(n uint64) float64 {
	if ctx.Rep.Instructions == 0 {
		return 0
	}
	return float64(n) / float64(ctx.Rep.Instructions)
}

// Table1 reproduces opcode group frequencies.
func Table1(ctx *Context) Outcome {
	var sb strings.Builder
	var rows [][]string
	var checks []report.Check
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		measured := 100 * ctx.Rep.GroupFreq(g)
		want := paper.Table1[g]
		rows = append(rows, []string{g.String(), report.Pct(want), report.Pct(measured)})
		checks = append(checks, report.Check{
			Name: g.String(), Paper: want, Measured: measured,
			RelTol: 0.5, AbsTol: 1.0,
		})
	}
	report.Table(&sb, "Table 1: Opcode Group Frequency (percent)",
		[]string{"group", "paper", "measured"}, rows)
	return finish("T1", "Opcode group frequency", &sb, checks)
}

// Table2 reproduces the PC-changing instruction table.
func Table2(ctx *Context) Outcome {
	var sb strings.Builder
	var rows [][]string
	var checks []report.Check
	instr := float64(ctx.Rep.Instructions)
	var totAll, totTaken float64
	for _, prow := range paper.Table2 {
		st := ctx.Rep.PCClasses[prow.Class]
		pctAll := 100 * float64(st.Entries) / instr
		totAll += pctAll
		totTaken += 100 * float64(st.Taken) / instr
		rows = append(rows, []string{
			prow.Class.String(),
			report.Pct(prow.PctAll), report.Pct(pctAll),
			report.Pct(prow.PctTaken), report.Pct(st.PctTaken()),
		})
		checks = append(checks,
			report.Check{Name: prow.Class.String() + " freq", Paper: prow.PctAll,
				Measured: pctAll, RelTol: 0.6, AbsTol: 0.8},
			report.Check{Name: prow.Class.String() + " %taken", Paper: prow.PctTaken,
				Measured: st.PctTaken(), RelTol: 0.35, AbsTol: 8},
		)
	}
	rows = append(rows, []string{"TOTAL",
		report.Pct(paper.Table2Total.PctAll), report.Pct(totAll),
		report.Pct(paper.Table2Total.PctTaken), report.Pct(100 * totTaken / totAll)})
	checks = append(checks, report.Check{
		Name: "PC-changing share", Paper: paper.Table2Total.PctAll,
		Measured: totAll, RelTol: 0.3,
	})
	report.Table(&sb, "Table 2: PC-Changing Instructions",
		[]string{"type", "paper %all", "meas %all", "paper %taken", "meas %taken"}, rows)
	return finish("T2", "PC-changing instructions", &sb, checks)
}

// Table3 reproduces specifiers per instruction.
func Table3(ctx *Context) Outcome {
	var sb strings.Builder
	s1, s26, bd := ctx.Rep.SpecsPerInstr()
	rows := [][]string{
		{"First specifiers", report.F(paper.Table3FirstSpecs, 3), report.F(s1, 3)},
		{"Other specifiers", report.F(paper.Table3OtherSpecs, 3), report.F(s26, 3)},
		{"Branch displacements", report.F(paper.Table3BranchDisps, 3), report.F(bd, 3)},
	}
	report.Table(&sb, "Table 3: Specifiers and Branch Displacements per Average Instruction",
		[]string{"object", "paper", "measured"}, rows)
	checks := []report.Check{
		{Name: "first specs/instr", Paper: paper.Table3FirstSpecs, Measured: s1, RelTol: 0.3},
		{Name: "other specs/instr", Paper: paper.Table3OtherSpecs, Measured: s26, RelTol: 0.4},
		{Name: "branch disps/instr", Paper: paper.Table3BranchDisps, Measured: bd, RelTol: 0.4},
	}
	return finish("T3", "Specifiers per instruction", &sb, checks)
}

// Table4 reproduces the operand specifier distribution.
func Table4(ctx *Context) Outcome {
	var sb strings.Builder
	var rows [][]string
	var checks []report.Check
	spec := ctx.Rep.Spec
	t1 := float64(spec.Spec1)
	t26 := float64(spec.Spec26)
	for i, prow := range paper.Table4 {
		cat := core.SpecCategory(i)
		m1, m26 := 0.0, 0.0
		if t1 > 0 {
			m1 = 100 * float64(spec.ByCategory[cat].Spec1) / t1
		}
		if t26 > 0 {
			m26 = 100 * float64(spec.ByCategory[cat].Spec26) / t26
		}
		rows = append(rows, []string{prow.Label,
			report.Pct(prow.Spec1), report.Pct(m1),
			report.Pct(prow.Spec26), report.Pct(m26)})
		tol := 0.6
		if prow.Estimated {
			tol = 1.2
		}
		checks = append(checks, report.Check{
			Name: prow.Label + " SPEC1", Paper: prow.Spec1, Measured: m1,
			RelTol: tol, AbsTol: 2.5, Estimated: prow.Estimated,
		})
	}
	idx := 0.0
	if t1+t26 > 0 {
		idx = 100 * float64(spec.Indexed) / (t1 + t26)
	}
	rows = append(rows, []string{"Percent indexed",
		report.Pct(paper.Table4Indexed.Spec1), "-",
		report.Pct(paper.Table4Indexed.Spec26), report.Pct(idx)})
	checks = append(checks, report.Check{
		Name: "percent indexed", Paper: paper.Table4Indexed.Total, Measured: idx,
		RelTol: 0.6, AbsTol: 2,
	})
	report.Table(&sb, "Table 4: Operand Specifier Distribution (percent)",
		[]string{"mode", "paper S1", "meas S1", "paper S2-6", "meas S2-6"}, rows)
	return finish("T4", "Operand specifier distribution", &sb, checks)
}

// Table5 reproduces D-stream reads/writes per instruction by source.
func Table5(ctx *Context) Outcome {
	var sb strings.Builder
	var rows [][]string
	var checks []report.Check
	measured := map[string]core.MemOpRow{}
	for _, row := range ctx.Rep.MemOps {
		measured[row.Label] = row
	}
	var mr, mw float64
	for _, prow := range paper.Table5 {
		m := measured[prow.Label]
		mr += m.Reads
		mw += m.Writes
		rows = append(rows, []string{prow.Label,
			report.F(prow.Reads, 3), report.F(m.Reads, 3),
			report.F(prow.Writes, 3), report.F(m.Writes, 3)})
		checks = append(checks, report.Check{
			Name: prow.Label + " reads", Paper: prow.Reads, Measured: m.Reads,
			RelTol: 0.6, AbsTol: 0.03, Estimated: prow.Estimated,
		})
	}
	rows = append(rows, []string{"TOTAL",
		report.F(paper.Table5TotalReads, 3), report.F(mr, 3),
		report.F(paper.Table5TotalWrites, 3), report.F(mw, 3)})
	checks = append(checks,
		report.Check{Name: "total reads/instr", Paper: paper.Table5TotalReads, Measured: mr, RelTol: 0.3},
		report.Check{Name: "total writes/instr", Paper: paper.Table5TotalWrites, Measured: mw, RelTol: 0.3},
		report.Check{Name: "read:write ratio", Paper: paper.Table5TotalReads / paper.Table5TotalWrites,
			Measured: safeDiv(mr, mw), RelTol: 0.3},
	)
	report.Table(&sb, "Table 5: D-stream Reads and Writes per Average Instruction",
		[]string{"source", "paper rd", "meas rd", "paper wr", "meas wr"}, rows)
	return finish("T5", "Reads and writes per instruction", &sb, checks)
}

// Table6 reproduces the estimated size of the average instruction.
func Table6(ctx *Context) Outcome {
	var sb strings.Builder
	est := ctx.Rep.EstInstrBytes()
	exact := ctx.perInstr(ctx.IB.BytesConsumed)
	s1, s26, bd := ctx.Rep.SpecsPerInstr()
	rows := [][]string{
		{"Opcode bytes/instr", "1.00", "1.00"},
		{"Specifiers/instr", report.F(1.48, 2), report.F(s1+s26, 2)},
		{"Avg specifier bytes", report.F(paper.Table6SpecBytes, 2), report.F(ctx.Rep.Spec.EstSpecBytes, 2)},
		{"Branch disps/instr", report.F(0.31, 2), report.F(bd, 2)},
		{"TOTAL est. bytes", report.F(paper.Table6InstrBytes, 2), report.F(est, 2)},
		{"(exact, HW counter)", "-", report.F(exact, 2)},
	}
	report.Table(&sb, "Table 6: Estimated Size of Average Instruction",
		[]string{"object", "paper", "measured"}, rows)
	checks := []report.Check{
		{Name: "avg specifier bytes", Paper: paper.Table6SpecBytes, Measured: ctx.Rep.Spec.EstSpecBytes, RelTol: 0.25},
		{Name: "avg instruction bytes", Paper: paper.Table6InstrBytes, Measured: est, RelTol: 0.25},
		{Name: "exact instruction bytes", Paper: paper.Table6InstrBytes, Measured: exact, RelTol: 0.3},
	}
	return finish("T6", "Estimated instruction size", &sb, checks)
}

// Table7 reproduces interrupt and context-switch headways.
func Table7(ctx *Context) Outcome {
	var sb strings.Builder
	h := ctx.Rep.Headway
	rows := [][]string{
		{"Software interrupt requests", report.F(paper.Table7SoftIntHeadway, 0), report.F(h.SoftIntHeadway(), 0)},
		{"HW and SW interrupts", report.F(paper.Table7InterruptHeadway, 0), report.F(h.InterruptHeadway(), 0)},
		{"Context switches", report.F(paper.Table7CtxSwitchHeadway, 0), report.F(h.CtxSwitchHeadway(), 0)},
	}
	report.Table(&sb, "Table 7: Interrupt and Context-Switch Headway (instructions)",
		[]string{"event", "paper", "measured"}, rows)
	checks := []report.Check{
		{Name: "soft-int headway", Paper: paper.Table7SoftIntHeadway, Measured: h.SoftIntHeadway(), RelTol: 0.8},
		{Name: "interrupt headway", Paper: paper.Table7InterruptHeadway, Measured: h.InterruptHeadway(), RelTol: 0.8},
		{Name: "ctx-switch headway", Paper: paper.Table7CtxSwitchHeadway, Measured: h.CtxSwitchHeadway(), RelTol: 0.8},
	}
	return finish("T7", "Interrupt and context-switch headway", &sb, checks)
}

// Table8 reproduces the central timing matrix.
func Table8(ctx *Context) Outcome {
	var sb strings.Builder
	var rows [][]string
	var checks []report.Check
	cell := func(v float64) string { return report.F(v, 3) }
	for row := ucode.Row(0); row < ucode.NumRows; row++ {
		p := paper.Table8[row]
		m := ctx.Rep.Timing[row]
		rows = append(rows, []string{
			row.String(),
			cell(p.Compute), cell(m.Compute),
			cell(p.Read), cell(m.Read),
			cell(p.RStall), cell(m.RStall),
			cell(p.Write), cell(m.Write),
			cell(p.WStall), cell(m.WStall),
			cell(p.IBStall), cell(m.IBStall),
			cell(p.Total()), cell(m.Total()),
		})
		checks = append(checks, report.Check{
			Name: row.String() + " row total", Paper: p.Total(), Measured: m.Total(),
			RelTol: 0.6, AbsTol: 0.08, Estimated: p.Estimated,
		})
	}
	pt := paper.Table8Total
	mt := ctx.Rep.TimingTotal
	rows = append(rows, []string{"TOTAL",
		cell(pt.Compute), cell(mt.Compute), cell(pt.Read), cell(mt.Read),
		cell(pt.RStall), cell(mt.RStall), cell(pt.Write), cell(mt.Write),
		cell(pt.WStall), cell(mt.WStall), cell(pt.IBStall), cell(mt.IBStall),
		cell(paper.CPI), cell(ctx.Rep.CPI())})
	checks = append(checks,
		report.Check{Name: "CPI", Paper: paper.CPI, Measured: ctx.Rep.CPI(), RelTol: 0.2},
		report.Check{Name: "compute/instr", Paper: pt.Compute, Measured: mt.Compute, RelTol: 0.25},
		report.Check{Name: "reads/instr", Paper: pt.Read, Measured: mt.Read, RelTol: 0.3},
		report.Check{Name: "read stall/instr", Paper: pt.RStall, Measured: mt.RStall, RelTol: 0.6},
		report.Check{Name: "writes/instr", Paper: pt.Write, Measured: mt.Write, RelTol: 0.3},
		report.Check{Name: "write stall/instr", Paper: pt.WStall, Measured: mt.WStall, RelTol: 0.8},
		report.Check{Name: "IB stall/instr", Paper: pt.IBStall, Measured: mt.IBStall, RelTol: 0.8},
		report.Check{Name: "decode+spec share of time",
			Paper: (paper.Table8[ucode.RowDecode].Total() + paper.Table8[ucode.RowSpec1].Total() +
				paper.Table8[ucode.RowSpec26].Total() + paper.Table8[ucode.RowBDisp].Total()) / paper.CPI,
			Measured: (ctx.Rep.Timing[ucode.RowDecode].Total() + ctx.Rep.Timing[ucode.RowSpec1].Total() +
				ctx.Rep.Timing[ucode.RowSpec26].Total() + ctx.Rep.Timing[ucode.RowBDisp].Total()) / ctx.Rep.CPI(),
			RelTol: 0.25},
	)
	report.Table(&sb, "Table 8: Average VAX Instruction Timing (cycles per instruction; paper|measured pairs)",
		[]string{"row", "pC", "mC", "pR", "mR", "pRS", "mRS", "pW", "mW", "pWS", "mWS", "pIB", "mIB", "pT", "mT"}, rows)
	return finish("T8", "Average instruction timing", &sb, checks)
}

// Table9 reproduces within-group cycles per instruction.
func Table9(ctx *Context) Outcome {
	var sb strings.Builder
	var rows [][]string
	var checks []report.Check
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		p := paper.Table9(g)
		m := ctx.Rep.WithinGroup(g)
		rows = append(rows, []string{g.String(),
			report.F(p.Compute, 2), report.F(m.Compute, 2),
			report.F(p.Read, 2), report.F(m.Read, 2),
			report.F(p.Write, 2), report.F(m.Write, 2),
			report.F(p.Total(), 2), report.F(m.Total(), 2)})
		checks = append(checks, report.Check{
			Name: g.String() + " cycles", Paper: p.Total(), Measured: m.Total(),
			RelTol: 0.6, AbsTol: 0.4, Estimated: p.Estimated,
		})
	}
	// The two-orders-of-magnitude spread (§5).
	spread := safeDiv(ctx.Rep.WithinGroup(vax.GroupCharacter).Total(),
		ctx.Rep.WithinGroup(vax.GroupSimple).Total())
	checks = append(checks, report.Check{
		Name: "character:simple spread", Paper: 100, Measured: spread, RelTol: 0.7,
	})
	report.Table(&sb, "Table 9: Cycles per Instruction Within Each Group (paper|measured)",
		[]string{"group", "pComp", "mComp", "pRd", "mRd", "pWr", "mWr", "pTot", "mTot"}, rows)
	return finish("T9", "Within-group timing", &sb, checks)
}

// Figure1 reproduces the block diagram structurally.
func Figure1(ctx *Context) Outcome {
	var sb strings.Builder
	sb.WriteString(ctx.Machine.RenderTopology())
	sb.WriteString("\n")
	// Assert the paper's connectivity.
	topo := ctx.Machine.Topology()
	edges := map[string]bool{}
	for _, c := range topo {
		for _, to := range c.FeedsTo {
			edges[c.Name+"->"+to] = true
		}
	}
	want := []string{
		"I-Fetch->Instruction Buffer",
		"Instruction Buffer->I-Decode",
		"I-Decode->EBOX",
		"EBOX->Translation Buffer",
		"Translation Buffer->Cache",
		"Cache->SBI",
		"EBOX->Write Buffer",
		"Write Buffer->SBI",
		"SBI->Memory",
	}
	var checks []report.Check
	for _, e := range want {
		v := 0.0
		if edges[e] {
			v = 1
		}
		checks = append(checks, report.Check{Name: e, Paper: 1, Measured: v, RelTol: 0})
	}
	return finish("F1", "VAX-11/780 block diagram", &sb, checks)
}

// Section41 reproduces the I-stream reference characterization (§4.1).
func Section41(ctx *Context) Outcome {
	var sb strings.Builder
	refs := ctx.perInstr(ctx.IB.CacheRefs)
	// The paper derives bytes/reference as consumed bytes over references
	// ("those 2.2 references yielded on average 3.8 bytes").
	bytesPerRef := safeDiv(float64(ctx.IB.BytesConsumed), float64(ctx.IB.CacheRefs))
	rows := [][]string{
		{"IB cache refs / instr", report.F(paper.IBRefsPerInstr, 2), report.F(refs, 2)},
		{"Bytes delivered / ref", report.F(paper.IBBytesPerRef, 2), report.F(bytesPerRef, 2)},
	}
	report.Table(&sb, "Section 4.1: I-Stream References",
		[]string{"metric", "paper", "measured"}, rows)
	checks := []report.Check{
		{Name: "IB refs/instr", Paper: paper.IBRefsPerInstr, Measured: refs, RelTol: 0.5},
		{Name: "bytes/ref", Paper: paper.IBBytesPerRef, Measured: bytesPerRef, RelTol: 0.5},
	}
	return finish("S4.1", "I-stream references", &sb, checks)
}

// Section42 reproduces the cache and TB miss characterization (§4.2).
func Section42(ctx *Context) Outcome {
	var sb strings.Builder
	missI := ctx.perInstr(ctx.Cache.ReadMisses[cache.IStream])
	missD := ctx.perInstr(ctx.Cache.ReadMisses[cache.DStream])
	tbm := ctx.Rep.TBMiss
	rows := [][]string{
		{"Cache read misses / instr", report.F(paper.CacheMissPerInstr, 3), report.F(missI+missD, 3)},
		{"  I-stream", report.F(paper.CacheMissIStream, 3), report.F(missI, 3)},
		{"  D-stream", report.F(paper.CacheMissDStream, 3), report.F(missD, 3)},
		{"TB misses / instr", report.F(paper.TBMissPerInstr, 3), report.F(tbm.PerInstr(ctx.Rep.Instructions), 3)},
		{"  D-stream", report.F(paper.TBMissDStream, 3), report.F(ctx.perInstr(tbm.DStreamMisses), 3)},
		{"  I-stream", report.F(paper.TBMissIStream, 3), report.F(ctx.perInstr(tbm.IStreamMisses), 3)},
		{"TB miss service cycles", report.F(paper.TBMissServiceCycles, 1), report.F(tbm.CyclesPerMiss(), 1)},
		{"Unaligned refs / instr", report.F(paper.UnalignedPerInstr, 3), report.F(ctx.perInstr(ctx.HW.Unaligned), 3)},
	}
	report.Table(&sb, "Section 4.2: Cache and Translation Buffer Misses",
		[]string{"metric", "paper", "measured"}, rows)
	checks := []report.Check{
		{Name: "cache misses/instr", Paper: paper.CacheMissPerInstr, Measured: missI + missD, RelTol: 0.7},
		{Name: "TB misses/instr", Paper: paper.TBMissPerInstr, Measured: tbm.PerInstr(ctx.Rep.Instructions), RelTol: 0.8},
		{Name: "TB service cycles", Paper: paper.TBMissServiceCycles, Measured: tbm.CyclesPerMiss(), RelTol: 0.35},
	}
	return finish("S4.2", "Cache and TB misses", &sb, checks)
}

// RunAll executes every experiment against one measurement context.
func RunAll(ctx *Context) []Outcome {
	return []Outcome{
		Table1(ctx), Table2(ctx), Table3(ctx), Table4(ctx), Table5(ctx),
		Table6(ctx), Table7(ctx), Table8(ctx), Table9(ctx),
		Figure1(ctx), Section41(ctx), Section42(ctx), Section5Prose(ctx),
	}
}

// Summary renders a one-line-per-experiment pass/fail digest.
func Summary(outs []Outcome) string {
	var sb strings.Builder
	totalChecks, totalFails := 0, 0
	for _, o := range outs {
		status := "ok"
		if o.Fails > 0 {
			status = fmt.Sprintf("%d/%d checks off", o.Fails, len(o.Checks))
		}
		fmt.Fprintf(&sb, "%-5s %-40s %s\n", o.ID, o.Title, status)
		totalChecks += len(o.Checks)
		totalFails += o.Fails
	}
	fmt.Fprintf(&sb, "TOTAL: %d checks, %d outside tolerance\n", totalChecks, totalFails)
	return sb.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
