package experiments

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"vax780/internal/cpu"
	"vax780/internal/latency"
	"vax780/internal/vax"
)

// loadLatencyTable reads the committed latency.json at the module root.
func loadLatencyTable(t *testing.T) *latency.Table {
	t.Helper()
	root, err := latency.Root("")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	tab, err := latency.Load(filepath.Join(root, latency.File))
	if err != nil {
		t.Fatalf("load committed table: %v", err)
	}
	return tab
}

// TestLatencyOracle is the dynamic half of the oracle: the committed
// table covers exactly the registered opcodes, and every opcode's and
// every addressing mode's measured execute-phase cycles land inside the
// statically derived bounds.
func TestLatencyOracle(t *testing.T) {
	tab := loadLatencyTable(t)

	inTable := make(map[string]bool, len(tab.Opcodes))
	for _, op := range tab.Opcodes {
		inTable[op.Name] = true
	}
	registered := make(map[string]bool)
	for _, code := range cpu.RegisteredOpcodes() {
		info := vax.Lookup(code)
		if info == nil {
			t.Fatalf("registered opcode %#02x has no vax.OpInfo row", uint8(code))
		}
		registered[info.Name] = true
		if !inTable[info.Name] {
			t.Errorf("registered opcode %s missing from committed latency.json; regenerate with `go run ./cmd/vaxlat`", info.Name)
		}
	}
	for name := range inTable {
		if !registered[name] {
			t.Errorf("latency.json row %s has no registered microroutine; regenerate with `go run ./cmd/vaxlat`", name)
		}
	}

	probs, err := CheckLatencyTable(tab)
	if err != nil {
		t.Fatalf("cross-check: %v", err)
	}
	for _, p := range probs {
		t.Errorf("static/dynamic disagreement: %s", p)
	}
}

// TestLatencySweepDeterministic runs the full sweep twice concurrently
// (the machines share only the sealed control store) and demands
// byte-identical serialized results: the measurement owes the same
// determinism contract as the simulator it measures.
func TestLatencySweepDeterministic(t *testing.T) {
	tab := loadLatencyTable(t)
	sweep := func() []byte {
		out := make(map[string]map[string]uint64, len(tab.Opcodes))
		for i := range tab.Opcodes {
			op := &tab.Opcodes[i]
			m, err := MeasureOpcodeLatency(op, nil)
			if err != nil {
				t.Errorf("%s: %v", op.Name, err)
				return nil
			}
			out[op.Name] = m
		}
		b, err := json.Marshal(out) // map keys marshal sorted
		if err != nil {
			t.Errorf("marshal: %v", err)
		}
		return b
	}
	var a, b []byte
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a = sweep() }()
	go func() { defer wg.Done(); b = sweep() }()
	wg.Wait()
	if a == nil || b == nil {
		t.Fatal("sweep failed")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical sweeps measured different cycle attributions")
	}
}

// TestLatencyMisattributionCaught is the corruption test: shifting one
// microword's measured counts onto a different-class word of the same
// routine must violate the bounds. If this passes trivially the oracle
// has no teeth.
func TestLatencyMisattributionCaught(t *testing.T) {
	tab := loadLatencyTable(t)
	var chmk *latency.Opcode
	for i := range tab.Opcodes {
		if tab.Opcodes[i].Name == "CHMK" {
			chmk = &tab.Opcodes[i]
		}
	}
	if chmk == nil {
		t.Fatal("CHMK missing from committed table")
	}
	addrs := wordAddrs()
	work, okW := addrs["exec.sys.chm.work"]
	push, okP := addrs["exec.sys.chm.push"]
	if !okW || !okP {
		names := make([]string, 0, len(addrs))
		for n := range addrs {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("chm microwords renamed; control store has %v", names)
	}
	measured, err := MeasureOpcodeLatency(chmk, map[uint16]uint16{work: push})
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	if probs := chmk.Check(measured); len(probs) == 0 {
		t.Errorf("compute cycles misattributed to a write-class word went undetected; measured %v", measured)
	}
}
