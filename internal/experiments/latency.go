// The dynamic half of the latency oracle (DESIGN.md §16): single-step
// every registered opcode under directed conditions on a real Machine
// and attribute the measured µPC histogram over the opcode's committed
// word set. The static table (internal/latency, derived by the ulat
// analyzer, committed as latency.json) declares per-class bounds; the
// measurement here must land inside them — the software analogue of
// uops.info's measured-vs-documented diffing.
//
// Directed conditions, mirroring the static pruning policy exactly:
// physical addressing (no TB-miss service), aligned operands (no
// alignment microcode), no pending interrupts, patch cycles disabled.
// Attribution is over the opcode's word set, so specifier-phase cycles
// (measured separately per addressing mode), the decode cycle, and any
// service-row cycles an opcode's own semantics trigger (a CHMK's
// delivery runs on its System-row words; a fault's delivery runs on
// pruned exception-row words) never leak into the execute-phase
// comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"vax780/internal/cpu"
	"vax780/internal/latency"
	"vax780/internal/ucode"
	"vax780/internal/vax"
)

// latProbe is the measurement histogram: exec-channel counts only.
// Stalls are timing, not attribution, and the static side carries no
// stall bounds. Counts live in a dense table — Count runs once per
// machine cycle, inside the hot path the hotbox analyzer prices.
type latProbe struct {
	counts [ucode.StoreSize]uint64
}

func (p *latProbe) Count(upc uint16, n uint64) { p.counts[upc] += n }
func (p *latProbe) Stall(upc uint16, n uint64) {}

// Fixed physical layout of the measurement machine. Everything lives in
// the first megabyte and every structure is longword-aligned.
const (
	latSCBB    = 0x0400 // system control block
	latHandler = 0x3000 // where every SCB vector points
	latCode    = 0x1000 // the instruction under measurement
	latScratch = 0x4000 // per-operand scratch regions (latRegionSize apart)
	latFrame   = 0x6000 // call frame for RET
	latPCBB    = 0x7000 // process control block
	latStack   = 0x7FF8 // kernel SP: a PC/PSL pair sits on the stack

	latRegionSize = 0x200
)

// latRegion returns operand i's scratch region base.
func latRegion(i int) uint32 { return latScratch + uint32(i)*latRegionSize }

// newLatMachine builds a machine in the directed measurement state:
// kernel mode, MMU off, patch cycles disabled, SCB/PCB/stack/frame
// populated so every opcode's semantics — including the system group's
// stack switches, context switches and change-mode vectoring — run to
// completion without faulting.
func newLatMachine() (*cpu.Machine, *latProbe) {
	m := cpu.New(cpu.Config{MemBytes: 1 << 20, PatchEvery: -1})

	// Every SCB vector points at a (never-executed) handler.
	m.SetIPR(cpu.IPRSlotSCBB, latSCBB)
	for off := uint32(0); off < 0x200; off += 4 {
		m.Mem.WriteLong(latSCBB+off, latHandler)
	}

	// Kernel stack with a PC/PSL pair on top: REI, RSB and SVPCTX pop
	// from here; pushes grow downward into free memory.
	m.R[vax.SP] = latStack
	m.SetIPR(cpu.IPRSlotKSP, latStack)
	m.SetIPR(cpu.IPRSlotUSP, 0x9000)
	m.Mem.WriteLong(latStack, 0x2000) // saved PC
	m.Mem.WriteLong(latStack+4, 0)    // saved PSL (kernel)

	// A CALLG-style frame for RET: no condition handler, empty register
	// mask, plausible saved AP/FP/PC.
	m.R[vax.FP] = latFrame
	m.Mem.WriteLong(latFrame, 0)
	m.Mem.WriteLong(latFrame+4, 0)
	m.Mem.WriteLong(latFrame+8, 0x9000)
	m.Mem.WriteLong(latFrame+12, latFrame+0x100)
	m.Mem.WriteLong(latFrame+16, 0x2000)

	// A complete PCB for SVPCTX/LDPCTX: valid stack pointers, resume
	// PC/PSL, MMU fields zero (the MMU stays off).
	m.SetIPR(cpu.IPRSlotPCBB, latPCBB)
	m.Mem.WriteLong(latPCBB+cpu.PCBOffset(0), latStack) // KSP
	m.Mem.WriteLong(latPCBB+cpu.PCBOffset(1), 0x9000)   // USP
	m.Mem.WriteLong(latPCBB+cpu.PCBOffset(16), 0x2000)  // PC
	m.Mem.WriteLong(latPCBB+cpu.PCBOffset(17), 0)       // PSL

	// Operand base registers: R2+2i addresses region i, leaving the odd
	// register of each pair free for quad-width operands.
	for i := 0; i < 6; i++ {
		m.R[2+2*i] = latRegion(i)
	}

	p := &latProbe{}
	m.AttachProbe(p)
	m.SetMonitorGate(true)
	return m, p
}

// prepOperands writes whatever operand memory an opcode's semantics
// demand beyond zero-filled scratch.
func prepOperands(m *cpu.Machine, info *vax.OpInfo) {
	switch info.Group {
	case vax.GroupDecimal:
		// Valid packed decimal "123" (plus sign) in every region: a
		// nonzero divisor for DIVP, valid nibbles everywhere.
		for i := 0; i < 6; i++ {
			m.Mem.SetByte(latRegion(i), 0x12)
			m.Mem.SetByte(latRegion(i)+1, 0x3C)
		}
	}
	switch info.Name {
	case "INSQUE", "REMQUE":
		// Self-linked queue entries: inserting after (or removing) one
		// touches only valid links.
		for i := 0; i < 2; i++ {
			r := latRegion(i)
			m.Mem.WriteLong(r, r)
			m.Mem.WriteLong(r+4, r)
		}
	}
}

// encodeFor builds the I-stream bytes of one directed instance of the
// opcode: literal sources, register (pair) destinations, deferred
// scratch addresses for address/field operands, and a zero branch
// displacement. The choices keep every instruction legal — nonzero
// divisors, field positions inside a register, CASE selector on its
// single zero-displacement table entry.
func encodeFor(info *vax.OpInfo) ([]byte, error) {
	buf := []byte{byte(info.Code)}
	for i, spec := range info.Specs {
		s := vax.Specifier{}
		switch spec.Access {
		case vax.AccessRead:
			if spec.Type.Size() == 8 {
				s.Mode = vax.ModeRegister
				s.Base = vax.Reg(2 + 2*i)
			} else {
				s.Mode = vax.ModeLiteral
				s.Disp = readLiteral(info, i)
			}
		case vax.AccessWrite, vax.AccessModify, vax.AccessField:
			s.Mode = vax.ModeRegister
			s.Base = vax.Reg(2 + 2*i)
		case vax.AccessAddr:
			s.Mode = vax.ModeRegDeferred
			s.Base = vax.Reg(2 + 2*i)
		default:
			return nil, fmt.Errorf("%s operand %d: unhandled access %v", info.Name, i, spec.Access)
		}
		var err error
		buf, err = vax.EncodeSpecifier(buf, s, spec.Type)
		if err != nil {
			return nil, fmt.Errorf("%s operand %d: %w", info.Name, i, err)
		}
	}
	switch info.BranchDisp {
	case vax.TypeByte:
		buf = append(buf, 0)
	case vax.TypeWord:
		buf = append(buf, 0, 0)
	}
	if info.PCClass == vax.PCCase {
		buf = append(buf, 0, 0) // the single displacement word of a limit-0 CASE
	}
	return buf, nil
}

// readLiteral picks the short-literal value of read operand i.
func readLiteral(info *vax.OpInfo, i int) int32 {
	switch info.Name {
	case "MTPR":
		if i == 1 {
			return cpu.PRSCBB // a real, writable processor register
		}
	case "MFPR":
		if i == 0 {
			return cpu.PRSCBB
		}
	case "INDEX":
		// subscript 1 in [0,5], size 4, indexin 0: no subscript-range trap.
		return []int32{1, 0, 5, 4, 0}[i]
	case "EXTV", "EXTZV", "FFS", "FFC", "CMPV", "CMPZV", "INSV":
		return 3 // field position/size inside one register
	case "BBS", "BBC", "BBSS", "BBCS", "BBSC", "BBCC", "BBSSI", "BBCCI":
		return 3
	case "ASHP", "ASHL", "ASHQ":
		if i == 0 {
			return 1 // shift count
		}
	case "CASEB", "CASEW", "CASEL":
		return 0 // selector = base = limit = 0: exactly one table entry
	case "MOVC3", "MOVC5", "CMPC3", "CMPC5", "MOVTC", "LOCC", "SKPC", "SCANC", "SPANC":
		if spec := info.Specs[i]; spec.Type == vax.TypeWord {
			return 4 // string lengths: a few iterations of each loop
		}
		return 0 // fill/char/escape bytes
	case "CALLS", "PUSHR", "POPR":
		if i == 0 {
			return 1 // one argument / register mask {R0}
		}
	}
	return 1
}

// wordSetMatcher compiles a committed word set into a name predicate.
// A trailing ".*" entry is a prefix wildcard: the static side emits one
// when a whole handle family flows through a single indexed table (the
// per-mode dispatch banks), and the dynamic side must attribute every
// member the same way.
func wordSetMatcher(words []string) func(name string) bool {
	exact := make(map[string]bool, len(words))
	var prefixes []string
	for _, w := range words {
		if strings.HasSuffix(w, ".*") {
			prefixes = append(prefixes, strings.TrimSuffix(w, "*"))
		} else {
			exact[w] = true
		}
	}
	return func(name string) bool {
		if exact[name] {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
}

// wordAddrs maps word names to control-store addresses (for the
// corruption test's deliberate misattribution).
func wordAddrs() map[string]uint16 {
	out := make(map[string]uint16)
	for _, w := range cpu.CS.Words() {
		out[w.Name] = w.Addr
	}
	return out
}

// MeasureOpcodeLatency single-steps one directed instance of the opcode
// and returns its measured execute-phase cycles per class constant
// name, attributed over the committed word set. remap, if non-nil,
// rewrites histogram µPCs before attribution — the corruption hook: the
// oracle must catch a count that lands on the wrong word.
func MeasureOpcodeLatency(op *latency.Opcode, remap map[uint16]uint16) (map[string]uint64, error) {
	info := vax.LookupName(op.Name)
	if info == nil {
		return nil, fmt.Errorf("latency table names unknown opcode %s", op.Name)
	}
	buf, err := encodeFor(info)
	if err != nil {
		return nil, err
	}
	m, p := newLatMachine()
	prepOperands(m, info)
	m.Mem.Load(latCode, buf)
	m.SetPC(latCode)
	m.StepInstruction()
	if err := m.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", op.Name, err)
	}

	byAddr := make(map[uint16]struct {
		name  string
		class string
	})
	for _, w := range cpu.CS.Words() {
		byAddr[w.Addr] = struct {
			name  string
			class string
		}{w.Name, w.Class.ConstName()}
	}
	inSet := wordSetMatcher(op.Words)
	measured := make(map[string]uint64)
	for a, n := range p.counts {
		if n == 0 {
			continue
		}
		upc := uint16(a)
		if to, ok := remap[upc]; ok {
			upc = to
		}
		w, ok := byAddr[upc]
		if !ok || !inSet(w.name) {
			continue
		}
		measured[w.class] += n
	}
	return measured, nil
}

// MeasureModeLatency measures one addressing mode's specifier cost: a
// TSTL through the mode, attributed over the mode row's word set. TSTL
// is the minimal carrier — its execute phase is a single Simple-row
// word outside every mode word set.
func MeasureModeLatency(mode *latency.Mode) (map[string]uint64, error) {
	s, setup, err := modeSpecifier(mode.Mode)
	if err != nil {
		return nil, err
	}
	info := vax.LookupName("TSTL")
	if info == nil {
		return nil, fmt.Errorf("TSTL missing from the opcode table")
	}
	buf := []byte{byte(info.Code)}
	buf, err = vax.EncodeSpecifier(buf, s, vax.TypeLong)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", mode.Mode, err)
	}
	m, p := newLatMachine()
	setup(m)
	m.Mem.Load(latCode, buf)
	m.SetPC(latCode)
	m.StepInstruction()
	if err := m.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", mode.Mode, err)
	}
	inSet := wordSetMatcher(mode.Words)
	classAt := make(map[uint16]string)
	for _, w := range cpu.CS.Words() {
		if inSet(w.Name) {
			classAt[w.Addr] = w.Class.ConstName()
		}
	}
	measured := make(map[string]uint64)
	for a, n := range p.counts {
		if n == 0 {
			continue
		}
		if class, ok := classAt[uint16(a)]; ok {
			measured[class] += n
		}
	}
	return measured, nil
}

// modeSpecifier builds the directed TSTL specifier for one mode-table
// row, plus any machine setup (pointers for the deferred modes).
func modeSpecifier(mode string) (vax.Specifier, func(*cpu.Machine), error) {
	none := func(*cpu.Machine) {}
	switch mode {
	case "ModeLiteral":
		return vax.Specifier{Mode: vax.ModeLiteral, Disp: 1}, none, nil
	case "ModeImmediate":
		return vax.Specifier{Mode: vax.ModeImmediate, Imm: 5}, none, nil
	case "ModeRegister":
		return vax.Specifier{Mode: vax.ModeRegister, Base: vax.R2}, none, nil
	case "ModeRegDeferred":
		return vax.Specifier{Mode: vax.ModeRegDeferred, Base: vax.R2}, none, nil
	case "ModeAutoInc":
		return vax.Specifier{Mode: vax.ModeAutoInc, Base: vax.R2}, none, nil
	case "ModeAutoDec":
		return vax.Specifier{Mode: vax.ModeAutoDec, Base: vax.R2}, none, nil
	case "ModeAutoIncDef":
		return vax.Specifier{Mode: vax.ModeAutoIncDef, Base: vax.R2}, func(m *cpu.Machine) {
			m.Mem.WriteLong(latRegion(0), latRegion(1))
		}, nil
	case "ModeAbsolute":
		return vax.Specifier{Mode: vax.ModeAbsolute, Imm: uint64(latRegion(1))}, none, nil
	case "ModeByteDisp":
		return vax.Specifier{Mode: vax.ModeByteDisp, Base: vax.R2, Disp: 8}, none, nil
	case "ModeWordDisp":
		return vax.Specifier{Mode: vax.ModeWordDisp, Base: vax.R2, Disp: 8}, none, nil
	case "ModeLongDisp":
		return vax.Specifier{Mode: vax.ModeLongDisp, Base: vax.R2, Disp: 8}, none, nil
	case "ModeByteDispDef", "ModeWordDispDef", "ModeLongDispDef":
		am := map[string]vax.AddrMode{
			"ModeByteDispDef": vax.ModeByteDispDef,
			"ModeWordDispDef": vax.ModeWordDispDef,
			"ModeLongDispDef": vax.ModeLongDispDef,
		}[mode]
		return vax.Specifier{Mode: am, Base: vax.R2, Disp: 8}, func(m *cpu.Machine) {
			m.Mem.WriteLong(latRegion(0)+8, latRegion(1))
		}, nil
	}
	return vax.Specifier{}, nil, fmt.Errorf("mode table names unknown mode %s", mode)
}

// CheckLatencyTable runs the full dynamic cross-check: every opcode and
// every mode of the committed table measured and bounds-checked.
// Returned problems are empty when the machine agrees with its own
// microcode-derived oracle.
func CheckLatencyTable(tab *latency.Table) ([]string, error) {
	var probs []string
	for i := range tab.Opcodes {
		op := &tab.Opcodes[i]
		measured, err := MeasureOpcodeLatency(op, nil)
		if err != nil {
			return nil, err
		}
		probs = append(probs, op.Check(measured)...)
	}
	for i := range tab.Modes {
		mode := &tab.Modes[i]
		measured, err := MeasureModeLatency(mode)
		if err != nil {
			return nil, err
		}
		// Same containment policy as Opcode.Check; mode rows carry no
		// loop terms, so Max always binds.
		probe := latency.Opcode{Name: mode.Mode, Classes: mode.Classes}
		probs = append(probs, probe.Check(measured)...)
	}
	sort.Strings(probs)
	return probs, nil
}
