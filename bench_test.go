// Benchmarks regenerating every table and figure of the paper, one bench
// per item, plus ablation benches for the design choices DESIGN.md calls
// out. Each table bench measures against a shared composite measurement
// (built once, like the paper's hour-long sessions) and reports the
// headline quantity of its table as a custom metric next to the paper's
// value, so `go test -bench .` prints the whole reproduction (`make
// bench`). The paper constants these benches compare against live only in
// internal/paper; the paperconst analyzer run by `make check` keeps it
// that way.
package vax780

import (
	"sync"
	"testing"

	"vax780/internal/core"
	"vax780/internal/cpu"
	"vax780/internal/experiments"
	"vax780/internal/paper"
	"vax780/internal/ucode"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

// benchCycles is the per-workload budget for the shared composite. Large
// enough for stable statistics, small enough for `go test -bench`.
const benchCycles = 1_200_000

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

func sharedContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = experiments.NewContext(benchCycles, cpu.Config{})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

func runExperiment(b *testing.B, fn func(*experiments.Context) experiments.Outcome) experiments.Outcome {
	b.Helper()
	ctx := sharedContext(b)
	var out experiments.Outcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = fn(ctx)
	}
	b.StopTimer()
	if out.Fails > 0 {
		b.Errorf("%s: %d/%d shape checks outside tolerance:\n%s",
			out.ID, out.Fails, len(out.Checks), out.Text)
	}
	return out
}

func BenchmarkTable1OpcodeGroups(b *testing.B) {
	runExperiment(b, experiments.Table1)
	r := sharedContext(b).Rep
	b.ReportMetric(100*r.GroupFreq(vax.GroupSimple), "simple-%")
	b.ReportMetric(paper.Table1[vax.GroupSimple], "paper-simple-%")
}

func BenchmarkTable2PCChanging(b *testing.B) {
	runExperiment(b, experiments.Table2)
	r := sharedContext(b).Rep
	var all uint64
	for c := vax.PCClass(1); c < vax.NumPCClasses; c++ {
		all += r.PCClasses[c].Entries
	}
	b.ReportMetric(100*float64(all)/float64(r.Instructions), "pc-changing-%")
	b.ReportMetric(paper.Table2Total.PctAll, "paper-pc-changing-%")
}

func BenchmarkTable3SpecifiersPerInstr(b *testing.B) {
	runExperiment(b, experiments.Table3)
	s1, s26, _ := sharedContext(b).Rep.SpecsPerInstr()
	b.ReportMetric(s1+s26, "specs/instr")
	b.ReportMetric(paper.Table3FirstSpecs+paper.Table3OtherSpecs, "paper-specs/instr")
}

func BenchmarkTable4SpecifierDist(b *testing.B) {
	runExperiment(b, experiments.Table4)
	r := sharedContext(b).Rep
	reg := r.Spec.ByCategory[core.CatRegister]
	total := float64(r.Spec.Spec1 + r.Spec.Spec26)
	b.ReportMetric(100*float64(reg.Spec1+reg.Spec26)/total, "register-%")
}

func BenchmarkTable5ReadsWrites(b *testing.B) {
	runExperiment(b, experiments.Table5)
	r := sharedContext(b).Rep
	var mr, mw float64
	for _, row := range r.MemOps {
		mr += row.Reads
		mw += row.Writes
	}
	b.ReportMetric(mr, "reads/instr")
	b.ReportMetric(mw, "writes/instr")
	b.ReportMetric(paper.Table5TotalReads, "paper-reads/instr")
}

func BenchmarkTable6InstrSize(b *testing.B) {
	runExperiment(b, experiments.Table6)
	b.ReportMetric(sharedContext(b).Rep.EstInstrBytes(), "bytes/instr")
	b.ReportMetric(paper.Table6InstrBytes, "paper-bytes/instr")
}

func BenchmarkTable7Headway(b *testing.B) {
	runExperiment(b, experiments.Table7)
	b.ReportMetric(sharedContext(b).Rep.Headway.InterruptHeadway(), "instr/interrupt")
	b.ReportMetric(paper.Table7InterruptHeadway, "paper-instr/interrupt")
}

func BenchmarkTable8Timing(b *testing.B) {
	runExperiment(b, experiments.Table8)
	b.ReportMetric(sharedContext(b).Rep.CPI(), "CPI")
	b.ReportMetric(paper.CPI, "paper-CPI")
}

func BenchmarkTable9WithinGroup(b *testing.B) {
	runExperiment(b, experiments.Table9)
	r := sharedContext(b).Rep
	b.ReportMetric(r.WithinGroup(vax.GroupCallRet).Total(), "callret-cycles")
	b.ReportMetric(paper.Table9(vax.GroupCallRet).Total(), "paper-callret-cycles")
}

func BenchmarkFigure1BlockDiagram(b *testing.B) {
	runExperiment(b, experiments.Figure1)
}

func BenchmarkSection41IStream(b *testing.B) {
	runExperiment(b, experiments.Section41)
	ctx := sharedContext(b)
	b.ReportMetric(float64(ctx.IB.CacheRefs)/float64(ctx.Rep.Instructions), "ib-refs/instr")
	b.ReportMetric(paper.IBRefsPerInstr, "paper-ib-refs/instr")
}

func BenchmarkSection42Misses(b *testing.B) {
	runExperiment(b, experiments.Section42)
	ctx := sharedContext(b)
	b.ReportMetric(ctx.Rep.TBMiss.PerInstr(ctx.Rep.Instructions), "tb-miss/instr")
	b.ReportMetric(ctx.Rep.TBMiss.CyclesPerMiss(), "cycles/tb-miss")
}

// ---------------------------------------------------------------------------
// Ablation benches: re-measure one workload under a modified machine and
// report how the affected Table 8 column moves. These run real simulations
// per configuration (cached across b.N).

type ablationResult struct {
	cpi     float64
	columns core.ColumnSet
}

var (
	ablMu    sync.Mutex
	ablCache = map[string]ablationResult{}
)

func measureAblation(b *testing.B, key string, cfg cpu.Config) ablationResult {
	b.Helper()
	ablMu.Lock()
	defer ablMu.Unlock()
	if r, ok := ablCache[key]; ok {
		return r
	}
	res, err := workload.Run(workload.TimesharingCPUDev, benchCycles, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep := core.Reduce(res.Hist, cpu.CS)
	out := ablationResult{cpi: rep.CPI(), columns: rep.TimingTotal}
	ablCache[key] = out
	return out
}

// BenchmarkAblationWriteBufferDepth sweeps the write buffer: the paper's
// CALL-heavy write stalls should shrink with a deeper buffer.
func BenchmarkAblationWriteBufferDepth(b *testing.B) {
	var d1, d4 ablationResult
	for i := 0; i < b.N; i++ {
		d1 = measureAblation(b, "wb1", cpu.Config{WriteBufferDepth: 1})
		d4 = measureAblation(b, "wb4", cpu.Config{WriteBufferDepth: 4})
	}
	if d4.columns.WStall > d1.columns.WStall {
		b.Errorf("deeper write buffer increased write stall: %.3f -> %.3f",
			d1.columns.WStall, d4.columns.WStall)
	}
	b.ReportMetric(d1.columns.WStall, "wstall-depth1")
	b.ReportMetric(d4.columns.WStall, "wstall-depth4")
}

// BenchmarkAblationMissPenalty sweeps the cache miss penalty: read stall
// should scale with it.
func BenchmarkAblationMissPenalty(b *testing.B) {
	var m6, m12 ablationResult
	for i := 0; i < b.N; i++ {
		m6 = measureAblation(b, "miss6", cpu.Config{})
		cfg := cpu.Config{}
		cfg.SBI.ReadLatency = 12
		cfg.SBI.WriteOccupancy = 6
		m12 = measureAblation(b, "miss12", cfg)
	}
	if m12.columns.RStall <= m6.columns.RStall {
		b.Errorf("doubling miss penalty did not raise read stall: %.3f -> %.3f",
			m6.columns.RStall, m12.columns.RStall)
	}
	b.ReportMetric(m6.columns.RStall, "rstall-6cyc")
	b.ReportMetric(m12.columns.RStall, "rstall-12cyc")
}

// BenchmarkAblationDecodeOverlap models the 11/750's folding of the
// non-overlapped decode cycle (§5: "saving the non-overlapped I-Decode
// cycle could save one cycle on each non-PC-changing instruction").
func BenchmarkAblationDecodeOverlap(b *testing.B) {
	var base, overlap ablationResult
	for i := 0; i < b.N; i++ {
		base = measureAblation(b, "dec-780", cpu.Config{})
		overlap = measureAblation(b, "dec-750", cpu.Config{DecodeOverlap: true})
	}
	saved := base.cpi - overlap.cpi
	// Roughly one cycle per non-PC-changing instruction (~60-75% of all).
	if saved < 0.3 || saved > 1.2 {
		b.Errorf("decode overlap saved %.2f CPI; expected roughly the paper's ~0.6-0.75", saved)
	}
	b.ReportMetric(base.cpi, "CPI-780")
	b.ReportMetric(overlap.cpi, "CPI-overlap")
}

// BenchmarkAblationCharSpacing removes the character microcode's
// write-stall-avoidance spacing (§4.3): character write stalls appear.
func BenchmarkAblationCharSpacing(b *testing.B) {
	var spaced, packed ablationResult
	for i := 0; i < b.N; i++ {
		spaced = measureAblation(b, "chsp", cpu.Config{})
		packed = measureAblation(b, "chnosp", cpu.Config{NoCharWriteSpacing: true})
	}
	_ = spaced
	ctx := sharedContext(b)
	charWS := ctx.Rep.Timing[ucode.RowCharacter].WStall
	b.ReportMetric(charWS, "char-wstall-spaced")
	b.ReportMetric(packed.columns.WStall, "total-wstall-packed")
}

// BenchmarkAblationTBFlush compares the 780's flush-on-LDPCTX against a
// hypothetical tagged TB that survives context switches (§3.4 connects the
// context-switch interval to TB flushing).
func BenchmarkAblationTBFlush(b *testing.B) {
	var flush, keep ablationResult
	for i := 0; i < b.N; i++ {
		flush = measureAblation(b, "tbflush", cpu.Config{})
		keep = measureAblation(b, "tbkeep", cpu.Config{NoTBFlushOnSwitch: true})
	}
	b.ReportMetric(flush.columns.RStall+flush.columns.Compute, "flush-work")
	b.ReportMetric(keep.cpi, "CPI-tagged-tb")
	b.ReportMetric(flush.cpi, "CPI-flush")
}

// BenchmarkSimulator measures raw simulation speed: simulated cycles per
// wall second (the cost of the reproduction itself).
func BenchmarkSimulator(b *testing.B) {
	p := workload.TimesharingResearch
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(p, 400_000, cpu.Config{})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAblationNoFPA removes the Floating Point Accelerator all the
// measured machines had (§2.2): the FLOAT execute row grows by roughly the
// configured slowdown on a float-heavy workload.
func BenchmarkAblationNoFPA(b *testing.B) {
	var withFPA, without ablationResult
	run := func(key string, cfg cpu.Config) ablationResult {
		ablMu.Lock()
		defer ablMu.Unlock()
		if r, ok := ablCache[key]; ok {
			return r
		}
		res, err := workload.Run(workload.RTEScientific, benchCycles, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep := core.Reduce(res.Hist, cpu.CS)
		out := ablationResult{cpi: rep.CPI()}
		out.columns.Compute = rep.Timing[ucode.RowFloat].Total()
		ablCache[key] = out
		return out
	}
	for i := 0; i < b.N; i++ {
		withFPA = run("fpa", cpu.Config{})
		without = run("nofpa", cpu.Config{NoFPA: true})
	}
	if without.columns.Compute <= withFPA.columns.Compute {
		b.Errorf("removing the FPA did not raise float time: %.3f -> %.3f",
			withFPA.columns.Compute, without.columns.Compute)
	}
	b.ReportMetric(withFPA.columns.Compute, "float-row-fpa")
	b.ReportMetric(without.columns.Compute, "float-row-nofpa")
}
