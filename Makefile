# Developer entry points. `make check` is the full pre-merge gate: build,
# go vet, the repo's own vaxlint static analyzers (cross-table invariant
# proofs, see DESIGN.md "Static analysis & invariants"), the test suite
# under the race detector, the chaos soak (fault injection into a full OS
# workload, DESIGN.md "Fault model & machine checks"), and a short fuzz
# smoke over the disassembler and instruction decoder.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet lint test race soak fuzz-smoke bench

check: build vet lint race soak fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/vaxlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos soak: millions of cycles of OS workload with every fault-injection
# point firing; nothing worse than a machine check may come out.
soak:
	$(GO) test -run TestChaosSoak -race ./internal/fault

# Short native-fuzz smoke per target; raise FUZZTIME for a real campaign.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDisasmOne -fuzztime $(FUZZTIME) ./internal/asm
	$(GO) test -fuzz=FuzzDecode$$ -fuzztime $(FUZZTIME) ./internal/vax
	$(GO) test -fuzz=FuzzDecodeSpecifier -fuzztime $(FUZZTIME) ./internal/vax

# Regenerate every table and figure of the paper (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x
