# Developer entry points. `make check` is the full pre-merge gate: build,
# go vet, the repo's own vaxlint static analyzers (cross-table invariant,
# determinism-contract, and µflow attribution proofs, see DESIGN.md
# "Static analysis & invariants"), the test suite
# under the race detector, the chaos soak (fault injection into a full OS
# workload, DESIGN.md "Fault model & machine checks"), the crash-
# consistency proof (kill a checkpointed run mid-write, resume, demand
# bit-identical results; DESIGN.md "Checkpoint format & run supervision"),
# and a short fuzz smoke over the disassembler, instruction decoder, and
# checkpoint loader.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet lint vaxlint sarif escape-truth latency latency-truth test race soak farmsoak crash-consistency fuzz-smoke bench lint-bench

check: build vet vaxlint escape-truth latency-truth race soak farmsoak crash-consistency fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# All eighteen analyzers, human-readable; vet is its own target above.
vaxlint:
	$(GO) run ./cmd/vaxlint -vet=false ./...

# Same run as a SARIF 2.1.0 log on stdout — for CI code-scanning upload.
sarif:
	$(GO) run ./cmd/vaxlint -vet=false -sarif ./...

# Same run, one JSON object per finding on stdout — for editors and CI
# annotators.
lint:
	$(GO) run ./cmd/vaxlint -vet=false -json ./...

# Escape ground truth: diff the hotpath analyzer's composite-literal
# escape verdicts against `go build -gcflags=-m` over the real hot set;
# drift in either direction — a stack claim the compiler refutes, or an
# unpinned over-approximation — fails the gate (see
# internal/analysis/escape_truth_test.go).
escape-truth:
	$(GO) test -run TestEscapeGroundTruth ./internal/analysis

# Latency oracle (DESIGN.md §16): regenerate the committed LATENCY.md +
# latency.json from the microroutines.
latency:
	$(GO) run ./cmd/vaxlat

# Latency oracle drift gate: re-derive the table in memory and diff both
# committed files (a one-cycle microroutine change fails here), then run
# the dynamic cross-check — every registered opcode and addressing mode
# single-stepped on a real machine must land inside its static bounds.
latency-truth:
	$(GO) run ./cmd/vaxlat -check
	$(GO) test -run 'TestLatency' ./internal/experiments

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos soak: millions of cycles of OS workload with every fault-injection
# point firing; nothing worse than a machine check may come out.
soak:
	$(GO) test -run TestChaosSoak -race ./internal/fault

# Farm soak: race-enabled chaos smoke over the fleet supervisor — workers
# killed mid-sweep with the fault plane firing must leave the merged
# histograms bit-identical to the unperturbed same-seed run, and killing
# every worker must shed with causes instead of hanging.
farmsoak:
	$(GO) test -race -run 'TestFarmChaosRescue|TestFarmPoolExhaustion' ./internal/farm

# Crash consistency: interrupt a checkpointed run, truncate the newest
# snapshot generation (a simulated crash mid-write), resume, and require
# results bit-identical to an uninterrupted run — under the race detector.
crash-consistency:
	$(GO) test -race -run 'TestCheckpointResumeDeterminism|TestCrashConsistencyKillAndResume' ./internal/workload

# Short native-fuzz smoke per target; raise FUZZTIME for a real campaign.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDisasmOne -fuzztime $(FUZZTIME) ./internal/asm
	$(GO) test -fuzz=FuzzDecode$$ -fuzztime $(FUZZTIME) ./internal/vax
	$(GO) test -fuzz=FuzzDecodeSpecifier -fuzztime $(FUZZTIME) ./internal/vax
	$(GO) test -fuzz=FuzzCheckpointLoad -fuzztime $(FUZZTIME) ./internal/checkpoint

# Regenerate every table and figure of the paper (see bench_test.go),
# then append a stepping-cost entry — cycles/sec, ns/cycle, allocs/cycle
# per workload profile — to the committed BENCH_step.json ledger, and a
# fleet-throughput entry (merged cycles/sec across the worker pool, with
# rescue/shed counts; one worker killed mid-sweep so the number covers
# the rescue path) to BENCH_farm.json.
bench:
	$(GO) test -bench . -benchtime 1x
	$(GO) run ./cmd/vaxbench -out BENCH_step.json
	$(GO) run ./cmd/vaxbench -farm -chaos "1@3" -out BENCH_farm.json

# Analyzer-suite cost: one module load, then each of the eighteen
# vaxlint analyzers timed over the whole tree with its findings count,
# appended to the committed BENCH_lint.json ledger — the suite is big
# enough that its own cost needs a trajectory.
lint-bench:
	$(GO) run ./cmd/vaxbench -lint -out BENCH_lint.json
