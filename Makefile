# Developer entry points. `make check` is the full pre-merge gate: build,
# go vet, the repo's own vaxlint static analyzers (cross-table invariant
# proofs, see DESIGN.md "Static analysis & invariants"), and the test
# suite under the race detector.

GO ?= go

.PHONY: check build vet lint test race bench

check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/vaxlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate every table and figure of the paper (see bench_test.go).
bench:
	$(GO) test -bench . -benchtime 1x
