package vax780

import (
	"testing"

	"vax780/internal/asm"
	"vax780/internal/vax"
)

// TestPublicAPIQuickstart exercises the root package's facade end to end:
// machine, monitor, reduction.
func TestPublicAPIQuickstart(t *testing.T) {
	im, err := asm.Assemble(0x1000, `
	MOVL	#10, R7
	CLRL	R6
l:	ADDL2	R7, R6
	SOBGTR	R7, l
	HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(MachineConfig{MemBytes: 1 << 20})
	mon := NewMonitor()
	mon.Start()
	m.AttachProbe(mon)
	m.Mem.Load(im.Org, im.Bytes)
	m.R[vax.SP] = 0x8000
	m.SetPC(im.Org)
	res := m.Run(100_000)
	if res.Err != nil || !res.Halted {
		t.Fatalf("run: halted=%v err=%v", res.Halted, res.Err)
	}
	if m.R[6] != 55 {
		t.Errorf("sum = %d, want 55", m.R[6])
	}
	r := Reduce(mon.Snapshot())
	if r.Instructions != res.Instructions {
		t.Errorf("reduced instructions %d != %d", r.Instructions, res.Instructions)
	}
	if r.CPI() <= 0 {
		t.Error("CPI not positive")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 5 {
		t.Fatalf("workloads = %d, want 5 (the paper's)", len(ws))
	}
	res, err := MeasureWorkload(ws[0], 300_000, MachineConfig{MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if Reduce(res.Hist).Instructions == 0 {
		t.Error("nothing measured")
	}
}

func TestControlStoreExposed(t *testing.T) {
	cs := ControlStore()
	if _, ok := cs.Lookup("decode.ird"); !ok {
		t.Error("control store missing the decode dispatch")
	}
	if cs.Len() < 100 {
		t.Errorf("control store suspiciously small: %d words", cs.Len())
	}
}
